//! `to_bits`-level equivalence of the AVX2 kernels against the portable
//! scalar references, on randomised inputs. On hosts without AVX2 the
//! vector half of each test is skipped (the dispatcher would never pick
//! AVX2 there) and the dispatched wrapper is still exercised against the
//! portable reference.

use proptest::prelude::*;

fn finite64() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6f64..1e6, -1.0f64..1.0, Just(0.0), Just(-0.0)]
}

fn finite32() -> impl Strategy<Value = f32> {
    -100.0f32..100.0
}

/// Runs `avx2` only when the host supports it; always checks the
/// dispatched wrapper too (whatever path it picked) so portable-only hosts
/// still execute every assertion against the reference.
fn bits64(label: &str, reference: &[f64], candidate: &[f64]) {
    assert_eq!(reference.len(), candidate.len(), "{label}: length");
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: bit mismatch at {i}: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cmul_bitwise(data in proptest::collection::vec((finite64(), finite64()), 0..40)) {
        let a: Vec<f64> = data.iter().flat_map(|&(x, y)| [x, y]).collect();
        let b: Vec<f64> = data.iter().flat_map(|&(x, y)| [y, 0.5 * x - y]).collect();
        let mut want = vec![0.0; a.len()];
        bba_simd::portable::cmul(&mut want, &a, &b);
        let mut got = vec![0.0; a.len()];
        bba_simd::cmul(&mut got, &a, &b);
        bits64("cmul dispatched", &want, &got);
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let mut got = vec![0.0; a.len()];
            unsafe { bba_simd::avx2::cmul(&mut got, &a, &b) };
            bits64("cmul avx2", &want, &got);
        }
    }

    #[test]
    fn butterfly_bitwise(
        vals in proptest::collection::vec(finite64(), 0..32),
        tw in proptest::collection::vec(finite64(), 64..128),
        stride in 1usize..5,
    ) {
        let half = vals.len() / 2 * 2; // even f64 count per half
        let lo0: Vec<f64> = vals[..half].to_vec();
        let hi0: Vec<f64> = vals[..half].iter().map(|x| x * 0.75 - 1.0).collect();
        // Keep the strided accesses in range.
        let need = if half == 0 { 0 } else { (half / 2 - 1) * stride * 2 + 2 };
        prop_assume!(need <= tw.len());

        let (mut lo_a, mut hi_a) = (lo0.clone(), hi0.clone());
        bba_simd::portable::butterfly(&mut lo_a, &mut hi_a, &tw, stride);
        let (mut lo_b, mut hi_b) = (lo0.clone(), hi0.clone());
        bba_simd::butterfly(&mut lo_b, &mut hi_b, &tw, stride);
        bits64("butterfly lo", &lo_a, &lo_b);
        bits64("butterfly hi", &hi_a, &hi_b);
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let (mut lo_c, mut hi_c) = (lo0.clone(), hi0.clone());
            unsafe { bba_simd::avx2::butterfly(&mut lo_c, &mut hi_c, &tw, stride) };
            bits64("butterfly avx2 lo", &lo_a, &lo_c);
            bits64("butterfly avx2 hi", &hi_a, &hi_c);
        }
    }

    #[test]
    fn butterfly_x2_matches_two_single_streams(
        vals in proptest::collection::vec(finite64(), 0..32),
        tw in proptest::collection::vec(finite64(), 64..128),
        stride in 1usize..5,
    ) {
        // Build two streams, interleave them pairwise, and check the paired
        // kernel against running the single-stream kernel on each.
        let n = vals.len() / 2; // complexes per stream half
        let s0: Vec<f64> = vals[..2 * n].to_vec();
        let s1: Vec<f64> = s0.iter().map(|x| 1.0 - x).collect();
        let hi_of = |s: &[f64]| -> Vec<f64> { s.iter().map(|x| x * 0.5 + 2.0).collect() };
        let need = if n == 0 { 0 } else { (n - 1) * stride * 2 + 2 };
        prop_assume!(need <= tw.len());

        let interleave = |a: &[f64], b: &[f64]| -> Vec<f64> {
            let mut out = Vec::with_capacity(a.len() * 2);
            for k in 0..a.len() / 2 {
                out.extend_from_slice(&a[2 * k..2 * k + 2]);
                out.extend_from_slice(&b[2 * k..2 * k + 2]);
            }
            out
        };
        let mut lo2 = interleave(&s0, &s1);
        let mut hi2 = interleave(&hi_of(&s0), &hi_of(&s1));
        bba_simd::butterfly_x2(&mut lo2, &mut hi2, &tw, stride);

        let (mut lo_s0, mut hi_s0) = (s0.clone(), hi_of(&s0));
        bba_simd::portable::butterfly(&mut lo_s0, &mut hi_s0, &tw, stride);
        let (mut lo_s1, mut hi_s1) = (s1.clone(), hi_of(&s1));
        bba_simd::portable::butterfly(&mut lo_s1, &mut hi_s1, &tw, stride);

        bits64("x2 lo", &interleave(&lo_s0, &lo_s1), &lo2);
        bits64("x2 hi", &interleave(&hi_s0, &hi_s1), &hi2);
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let mut lo_c = interleave(&s0, &s1);
            let mut hi_c = interleave(&hi_of(&s0), &hi_of(&s1));
            unsafe { bba_simd::avx2::butterfly_x2(&mut lo_c, &mut hi_c, &tw, stride) };
            bits64("x2 avx2 lo", &interleave(&lo_s0, &lo_s1), &lo_c);
            bits64("x2 avx2 hi", &interleave(&hi_s0, &hi_s1), &hi_c);
        }
    }

    #[test]
    fn fft_pass_matches_per_block_butterflies(
        vals in proptest::collection::vec(finite64(), 1..48),
        tw in proptest::collection::vec(finite64(), 64..128),
        half_pow in 0u32..4,
        stride in 1usize..5,
        blocks in 0usize..5,
    ) {
        let half = 1usize << half_pow; // complexes per block half
        let need = (half - 1) * stride * 2 + 2;
        prop_assume!(need <= tw.len());
        // Tile `blocks` blocks of 2·half complexes from the value pool.
        let step = 4 * half;
        let mut x0 = Vec::with_capacity(blocks * step);
        for i in 0..blocks * step {
            x0.push(vals[i % vals.len()] * (1.0 + 0.01 * i as f64));
        }

        // Reference: the per-block scalar butterfly loop.
        let mut want = x0.clone();
        for block in want.chunks_exact_mut(step) {
            let (lo, hi) = block.split_at_mut(2 * half);
            bba_simd::portable::butterfly(lo, hi, &tw, stride);
        }
        let mut got = x0.clone();
        bba_simd::fft_pass(&mut got, &tw, half, stride);
        bits64("fft_pass dispatched", &want, &got);
        let mut got = x0.clone();
        bba_simd::portable::fft_pass(&mut got, &tw, half, stride);
        bits64("fft_pass portable", &want, &got);
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let mut got = x0.clone();
            unsafe { bba_simd::avx2::fft_pass(&mut got, &tw, half, stride) };
            bits64("fft_pass avx2", &want, &got);
        }
    }

    #[test]
    fn fft_pass_x2_matches_per_block_butterflies(
        vals in proptest::collection::vec(finite64(), 1..48),
        tw in proptest::collection::vec(finite64(), 64..128),
        half_pow in 0u32..3,
        stride in 1usize..5,
        blocks in 0usize..4,
    ) {
        let half = 1usize << half_pow; // stream-pair elements per block half
        let need = (half - 1) * stride * 2 + 2;
        prop_assume!(need <= tw.len());
        let step = 8 * half;
        let mut x0 = Vec::with_capacity(blocks * step);
        for i in 0..blocks * step {
            x0.push(vals[i % vals.len()] * (1.0 - 0.01 * i as f64));
        }

        let mut want = x0.clone();
        for block in want.chunks_exact_mut(step) {
            let (lo, hi) = block.split_at_mut(4 * half);
            bba_simd::portable::butterfly_x2(lo, hi, &tw, stride);
        }
        let mut got = x0.clone();
        bba_simd::fft_pass_x2(&mut got, &tw, half, stride);
        bits64("fft_pass_x2 dispatched", &want, &got);
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let mut got = x0.clone();
            unsafe { bba_simd::avx2::fft_pass_x2(&mut got, &tw, half, stride) };
            bits64("fft_pass_x2 avx2", &want, &got);
        }
    }

    #[test]
    fn amp_accumulate_bitwise(
        z in proptest::collection::vec(finite64(), 0..40),
        acc0 in proptest::collection::vec(finite64(), 0..20),
        scale in 1e-6f64..2.0,
        both in any::<bool>(),
        init in any::<bool>(),
    ) {
        let n = (z.len() / 2).min(acc0.len());
        let z = &z[..2 * n];
        let mut want = acc0[..n].to_vec();
        bba_simd::portable::amp_accumulate(&mut want, z, scale, both, init);
        let mut got = acc0[..n].to_vec();
        bba_simd::amp_accumulate(&mut got, z, scale, both, init);
        bits64("amp_accumulate dispatched", &want, &got);
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let mut got = acc0[..n].to_vec();
            unsafe { bba_simd::avx2::amp_accumulate(&mut got, z, scale, both, init) };
            bits64("amp_accumulate avx2", &want, &got);
        }
    }

    #[test]
    fn amp_max_fold_and_merge_bitwise(
        z in proptest::collection::vec(finite64(), 0..40),
        partial in proptest::collection::vec(finite64(), 0..20),
        seeds in proptest::collection::vec((finite64(), 0u8..12), 0..20),
        scale in 1e-6f64..2.0,
        both in any::<bool>(),
        with_partial in any::<bool>(),
        o in 0u8..12,
    ) {
        let n = (z.len() / 2).min(partial.len()).min(seeds.len());
        let z = &z[..2 * n];
        let p = with_partial.then(|| &partial[..n]);
        let amp0: Vec<f64> = seeds[..n].iter().map(|s| s.0).collect();
        let idx0: Vec<u8> = seeds[..n].iter().map(|s| s.1).collect();

        let (mut amp_a, mut idx_a) = (amp0.clone(), idx0.clone());
        bba_simd::portable::amp_max_fold(&mut amp_a, &mut idx_a, z, scale, both, p, o);
        let (mut amp_b, mut idx_b) = (amp0.clone(), idx0.clone());
        bba_simd::amp_max_fold(&mut amp_b, &mut idx_b, z, scale, both, p, o);
        bits64("amp_max_fold amp", &amp_a, &amp_b);
        prop_assert_eq!(&idx_a, &idx_b, "amp_max_fold idx");
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let (mut amp_c, mut idx_c) = (amp0.clone(), idx0.clone());
            unsafe { bba_simd::avx2::amp_max_fold(&mut amp_c, &mut idx_c, z, scale, both, p, o) };
            bits64("amp_max_fold avx2 amp", &amp_a, &amp_c);
            prop_assert_eq!(&idx_a, &idx_c, "amp_max_fold avx2 idx");
        }

        // Merge the folded candidate back into the seed state.
        let (mut m_amp_a, mut m_idx_a) = (amp0.clone(), idx0.clone());
        bba_simd::portable::max_merge(&mut m_amp_a, &mut m_idx_a, &amp_a, &idx_a);
        let (mut m_amp_b, mut m_idx_b) = (amp0.clone(), idx0.clone());
        bba_simd::max_merge(&mut m_amp_b, &mut m_idx_b, &amp_a, &idx_a);
        bits64("max_merge amp", &m_amp_a, &m_amp_b);
        prop_assert_eq!(&m_idx_a, &m_idx_b, "max_merge idx");
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let (mut m_amp_c, mut m_idx_c) = (amp0.clone(), idx0.clone());
            unsafe { bba_simd::avx2::max_merge(&mut m_amp_c, &mut m_idx_c, &amp_a, &idx_a) };
            bits64("max_merge avx2 amp", &m_amp_a, &m_amp_c);
            prop_assert_eq!(&m_idx_a, &m_idx_c, "max_merge avx2 idx");
        }
    }

    #[test]
    fn dot_f32_bitwise(pairs in proptest::collection::vec((finite32(), finite32()), 0..70)) {
        let a: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let want = bba_simd::portable::dot_f32(&a, &b);
        prop_assert_eq!(want.to_bits(), bba_simd::dot_f32(&a, &b).to_bits(), "dot dispatched");
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let got = unsafe { bba_simd::avx2::dot_f32(&a, &b) };
            prop_assert_eq!(want.to_bits(), got.to_bits(), "dot avx2");
        }
    }

    #[test]
    fn rebin_row_bitwise(
        samples in proptest::collection::vec((0.0f64..10.0, 0u32..64, 0u8..12), 0..50),
        cells in proptest::collection::vec(prop_oneof![0u8..16, Just(u8::MAX)], 64..65),
        shift in -12.0f64..12.0,
    ) {
        let n_o = 12usize;
        let weights: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let offsets: Vec<u32> = samples.iter().map(|s| s.1).collect();
        let indices: Vec<u8> = samples.iter().map(|s| s.2).collect();
        // Build the LUT with the canonical soft-bin arithmetic.
        let mut lut = bba_simd::SoftBinLut::new();
        for r in 0..n_o {
            let shifted = (r as f64 - shift).rem_euclid(n_o as f64);
            let lo = (shifted.floor() as usize) % n_o;
            lut.push(lo, (lo + 1) % n_o, shifted - shifted.floor());
        }
        let dim = 16 * n_o;
        let mut want = vec![0.0f32; dim];
        bba_simd::portable::rebin_row(
            &mut want, &weights, &offsets, &indices, &cells, u8::MAX, n_o, &lut,
        );
        let mut got = vec![0.0f32; dim];
        bba_simd::rebin_row(&mut got, &weights, &offsets, &indices, &cells, u8::MAX, n_o, &lut);
        for (i, (a, b)) in want.iter().zip(&got).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "rebin dispatched bin {}", i);
        }
        #[cfg(target_arch = "x86_64")]
        if bba_simd::avx2_detected() {
            let mut got = vec![0.0f32; dim];
            unsafe {
                bba_simd::avx2::rebin_row(
                    &mut got, &weights, &offsets, &indices, &cells, u8::MAX, n_o, &lut,
                )
            };
            for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "rebin avx2 bin {}", i);
            }
        }
    }
}

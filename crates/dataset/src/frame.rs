//! Frame-pair generation: the dataset loader equivalent.

use bba_detect::{Detection, Detector, DetectorModel};
use bba_geometry::{Box3, Iso2};
use bba_lidar::{LidarConfig, Scan, Scanner};
use bba_scene::{ObstacleId, Scenario, ScenarioConfig, ScenarioPreset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One car's view at one timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentFrame {
    /// The LiDAR sweep (sensor frame).
    pub scan: Scan,
    /// Single-car object detections (sensor frame).
    pub detections: Vec<Detection>,
    /// Ground-truth pose of the car (world frame).
    pub pose: Iso2,
    /// Vehicle ids with at least [`Dataset::OBSERVED_MIN_HITS`] LiDAR hits.
    pub observed_vehicles: Vec<ObstacleId>,
}

/// One synchronized two-car frame: the dataset unit of every experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FramePair {
    /// Timestamp (s since scenario start).
    pub time: f64,
    /// The receiving car.
    pub ego: AgentFrame,
    /// The transmitting car.
    pub other: AgentFrame,
    /// Ground-truth relative transform other→ego (the recovery target).
    pub true_relative: Iso2,
    /// Ground-truth inter-vehicle distance (m).
    pub distance: f64,
    /// Vehicles observed by *both* cars — the paper's
    /// "commonly observed cars" covariate (Figs. 8 and 12).
    pub common_vehicles: Vec<ObstacleId>,
    /// Ground-truth vehicle boxes in the **ego frame** (every vehicle
    /// except the ego car itself) — the evaluation targets for
    /// cooperative-detection AP (Table I).
    pub gt_vehicles_ego: Vec<(ObstacleId, Box3)>,
}

impl FramePair {
    /// The paper's selection predicate (§V "Dataset"): keep pairs where at
    /// least two common cars are observed.
    pub fn is_selected(&self) -> bool {
        self.common_vehicles.len() >= 2
    }
}

/// Dataset generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Scenario parameters (world + agents).
    pub scenario: ScenarioConfig,
    /// Ego car sensor.
    pub ego_lidar: LidarConfig,
    /// Other car sensor (may differ — heterogeneous pairs).
    pub other_lidar: LidarConfig,
    /// Detection model used by both cars.
    pub detector: DetectorModel,
    /// Time between frame pairs (s).
    pub frame_interval: f64,
    /// Scenario start offset of the first frame (s).
    pub start_time: f64,
}

impl DatasetConfig {
    /// The default evaluation configuration: suburban scenario,
    /// heterogeneous 64/32-channel sensors, coBEVT-profile detector.
    pub fn standard() -> Self {
        DatasetConfig {
            scenario: ScenarioConfig::preset(ScenarioPreset::Suburban),
            ego_lidar: LidarConfig::mid_res_32(),
            other_lidar: LidarConfig::mid_res_32(),
            detector: DetectorModel::CoBevt,
            frame_interval: 0.5,
            start_time: 0.0,
        }
    }

    /// A small, fast configuration for tests: sensors coarse enough to be
    /// quick but dense enough that mid-range cars still collect the
    /// [`Dataset::OBSERVED_MIN_HITS`] returns the selection predicate needs.
    pub fn test_small() -> Self {
        let test_lidar = LidarConfig {
            channels: 24,
            azimuth_step: 1.0f64.to_radians(),
            ..LidarConfig::test_coarse()
        };
        DatasetConfig {
            scenario: ScenarioConfig::preset(ScenarioPreset::Urban),
            ego_lidar: test_lidar.clone(),
            other_lidar: test_lidar,
            detector: DetectorModel::CoBevt,
            frame_interval: 0.5,
            start_time: 0.0,
        }
    }

    /// Sets the time between frame pairs (builder style) — e.g.
    /// `at_frame_interval(0.1)` for a 10 Hz stream.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite interval.
    pub fn at_frame_interval(mut self, dt: f64) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "frame interval must be positive, got {dt}");
        self.frame_interval = dt;
        self
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig::standard()
    }
}

/// A lazy frame-pair generator over one scenario.
///
/// Frames are produced on demand ([`Dataset::next_pair`]) because a scan
/// pair is megabytes; experiments stream pairs and keep only error
/// statistics.
#[derive(Debug)]
pub struct Dataset {
    config: DatasetConfig,
    scenario: Scenario,
    ego_scanner: Scanner,
    other_scanner: Scanner,
    detector: Detector,
    rng: StdRng,
    next_time: f64,
    produced: usize,
}

impl Dataset {
    /// A vehicle counts as "observed" with at least this many LiDAR hits.
    pub const OBSERVED_MIN_HITS: usize = 5;

    /// Creates a generator for the given config and seed.
    pub fn new(config: DatasetConfig, seed: u64) -> Self {
        let scenario = Scenario::generate(&config.scenario, seed);
        Dataset {
            ego_scanner: Scanner::new(config.ego_lidar.clone()),
            other_scanner: Scanner::new(config.other_lidar.clone()),
            detector: Detector::new(config.detector),
            scenario,
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            next_time: config.start_time,
            produced: 0,
            config,
        }
    }

    /// The underlying scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The generation config.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of pairs produced so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Generates the next frame pair.
    ///
    /// Always returns `Some` — scenarios extrapolate trajectories — but the
    /// `Option` keeps the signature iterator-like and allows future bounded
    /// scenarios.
    pub fn next_pair(&mut self) -> Option<FramePair> {
        let t = self.next_time;
        self.next_time += self.config.frame_interval;
        self.produced += 1;
        Some(self.pair_at(t))
    }

    /// Generates the frame pair at an explicit time.
    pub fn pair_at(&mut self, t: f64) -> FramePair {
        let s = &self.scenario;
        let world = s.world();

        let ego_scan =
            self.ego_scanner.scan(world, s.ego_trajectory(), t, s.ego_id(), &mut self.rng);
        let other_scan =
            self.other_scanner.scan(world, s.other_trajectory(), t, s.other_id(), &mut self.rng);

        let ego_dets =
            self.detector.detect(&ego_scan, world, s.ego_trajectory(), s.ego_id(), &mut self.rng);
        let other_dets = self.detector.detect(
            &other_scan,
            world,
            s.other_trajectory(),
            s.other_id(),
            &mut self.rng,
        );

        let observed = |scan: &Scan, exclude: ObstacleId| -> Vec<ObstacleId> {
            world
                .vehicles_at(t, Some(exclude))
                .into_iter()
                .filter(|(id, _)| scan.hits_on(*id) >= Self::OBSERVED_MIN_HITS)
                .map(|(id, _)| id)
                .collect()
        };
        let ego_obs = observed(&ego_scan, s.ego_id());
        let other_obs = observed(&other_scan, s.other_id());
        // Common vehicles: seen by both, excluding the two agents
        // themselves (the paper counts *surrounding* cars).
        let common: Vec<ObstacleId> = ego_obs
            .iter()
            .copied()
            .filter(|id| other_obs.contains(id) && *id != s.ego_id() && *id != s.other_id())
            .collect();

        let ego_pose_inv = s.ego_trajectory().pose_at(t).inverse();
        let gt_vehicles_ego: Vec<(ObstacleId, Box3)> = world
            .vehicles_at(t, Some(s.ego_id()))
            .into_iter()
            .map(|(id, b)| (id, b.transformed(&ego_pose_inv)))
            .collect();

        FramePair {
            time: t,
            true_relative: s.true_relative_pose(t),
            distance: s.agent_distance(t),
            gt_vehicles_ego,
            ego: AgentFrame {
                scan: ego_scan,
                detections: ego_dets,
                pose: s.ego_trajectory().pose_at(t),
                observed_vehicles: ego_obs,
            },
            other: AgentFrame {
                scan: other_scan,
                detections: other_dets,
                pose: s.other_trajectory().pose_at(t),
                observed_vehicles: other_obs,
            },
            common_vehicles: common,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_scene::ScenarioPreset;

    #[test]
    fn pairs_are_consistent_with_ground_truth() {
        let mut ds = Dataset::new(DatasetConfig::test_small(), 1);
        let pair = ds.next_pair().unwrap();
        // Relative pose equals the pose algebra of the two agent frames.
        let expect = pair.ego.pose.relative_from(&pair.other.pose);
        assert!(pair.true_relative.approx_eq(&expect, 1e-9, 1e-9));
        // Distance matches translation magnitude of the relative pose
        // (same-lane following ⇒ nearly pure x offset).
        assert!((pair.distance - pair.true_relative.translation().norm()).abs() < 1e-9);
    }

    #[test]
    fn urban_frames_are_usually_selected() {
        let mut ds = Dataset::new(DatasetConfig::test_small(), 2);
        let selected = (0..6).filter(|_| ds.next_pair().unwrap().is_selected()).count();
        assert!(selected >= 4, "urban scenes should mostly pass selection, got {selected}/6");
    }

    #[test]
    fn rural_frames_have_fewer_common_vehicles() {
        let mut cfg = DatasetConfig::test_small();
        cfg.scenario = bba_scene::ScenarioConfig::preset(ScenarioPreset::OpenRural);
        let mut rural = Dataset::new(cfg, 3);
        let mut urban = Dataset::new(DatasetConfig::test_small(), 3);
        let rural_common: usize =
            (0..4).map(|_| rural.next_pair().unwrap().common_vehicles.len()).sum();
        let urban_common: usize =
            (0..4).map(|_| urban.next_pair().unwrap().common_vehicles.len()).sum();
        assert!(
            urban_common > rural_common,
            "urban {urban_common} should exceed rural {rural_common}"
        );
    }

    #[test]
    fn common_vehicles_excludes_agents() {
        let mut ds = Dataset::new(DatasetConfig::test_small(), 4);
        let pair = ds.next_pair().unwrap();
        let s = ds.scenario();
        assert!(!pair.common_vehicles.contains(&s.ego_id()));
        assert!(!pair.common_vehicles.contains(&s.other_id()));
    }

    #[test]
    fn frames_advance_in_time() {
        let mut ds = Dataset::new(DatasetConfig::test_small(), 5);
        let t0 = ds.next_pair().unwrap().time;
        let t1 = ds.next_pair().unwrap().time;
        assert!((t1 - t0 - 0.5).abs() < 1e-12);
        assert_eq!(ds.produced(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut ds = Dataset::new(DatasetConfig::test_small(), seed);
            ds.next_pair().unwrap()
        };
        assert_eq!(gen(9), gen(9));
    }
}

//! Fleet frame generation: synchronized N-car perception frames.
//!
//! The two-car [`crate::Dataset`] mirrors V2V4Real's pairwise
//! shape. Fleet-scale serving consumes the N-car generalisation: one
//! [`FleetFrame`] per timestamp holding an [`AgentFrame`] for every agent
//! vehicle in a [`FleetScenario`] platoon, from which a service forms the
//! pairwise sessions it multiplexes. Generation reuses the same scanner /
//! detector pipeline per car, so each car's frame has exactly the
//! statistics the two-car path produces.

use crate::frame::{AgentFrame, Dataset, DatasetConfig};
use bba_detect::Detector;
use bba_lidar::{Scan, Scanner};
use bba_scene::{FleetConfig, FleetScenario, ObstacleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Fleet dataset generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDatasetConfig {
    /// Fleet scenario (world + N agent vehicles).
    pub fleet: FleetConfig,
    /// Per-car sensor and detector parameters, plus frame timing. The
    /// `scenario` member of this config is ignored — the fleet's own
    /// scenario config governs generation.
    pub base: DatasetConfig,
}

impl FleetDatasetConfig {
    /// A small, fast N-car configuration for tests and CI benches: the
    /// two-car [`DatasetConfig::test_small`] sensors on an urban platoon.
    pub fn test_small(vehicles: usize) -> Self {
        let base = DatasetConfig::test_small();
        FleetDatasetConfig { fleet: FleetConfig::platoon(base.scenario.clone(), vehicles), base }
    }
}

/// One synchronized N-car frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFrame {
    /// Timestamp (s since scenario start).
    pub time: f64,
    /// One frame per agent vehicle, indexed like the fleet's vehicles.
    pub agents: Vec<AgentFrame>,
}

/// A lazy N-car frame generator over one fleet scenario.
#[derive(Debug)]
pub struct FleetDataset {
    config: FleetDatasetConfig,
    fleet: FleetScenario,
    scanner: Scanner,
    detector: Detector,
    rng: StdRng,
    next_time: f64,
}

impl FleetDataset {
    /// Creates a generator for the given config and seed.
    pub fn new(config: FleetDatasetConfig, seed: u64) -> Self {
        let fleet = FleetScenario::generate(&config.fleet, seed);
        FleetDataset {
            scanner: Scanner::new(config.base.ego_lidar.clone()),
            detector: Detector::new(config.base.detector),
            fleet,
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            next_time: config.base.start_time,
            config,
        }
    }

    /// The underlying fleet scenario.
    pub fn fleet(&self) -> &FleetScenario {
        &self.fleet
    }

    /// The generation config.
    pub fn config(&self) -> &FleetDatasetConfig {
        &self.config
    }

    /// Generates the next frame, advancing time by the configured
    /// interval.
    pub fn next_frame(&mut self) -> FleetFrame {
        let t = self.next_time;
        self.next_time += self.config.base.frame_interval;
        self.frame_at(t)
    }

    /// Generates the frame at an explicit time.
    pub fn frame_at(&mut self, t: f64) -> FleetFrame {
        let world = self.fleet.world();
        let mut agents = Vec::with_capacity(self.fleet.vehicle_count());
        for i in 0..self.fleet.vehicle_count() {
            let id = self.fleet.vehicle_id(i);
            let trajectory = self.fleet.trajectory(i);
            let scan = self.scanner.scan(world, trajectory, t, id, &mut self.rng);
            let detections = self.detector.detect(&scan, world, trajectory, id, &mut self.rng);
            let observed = observed_vehicles(&scan, world, t, id);
            agents.push(AgentFrame {
                scan,
                detections,
                pose: trajectory.pose_at(t),
                observed_vehicles: observed,
            });
        }
        FleetFrame { time: t, agents }
    }
}

/// Vehicle ids with at least [`Dataset::OBSERVED_MIN_HITS`] LiDAR hits in
/// `scan`, excluding the observing car itself.
fn observed_vehicles(
    scan: &Scan,
    world: &bba_scene::World,
    t: f64,
    exclude: ObstacleId,
) -> Vec<ObstacleId> {
    world
        .vehicles_at(t, Some(exclude))
        .into_iter()
        .filter(|(id, _)| scan.hits_on(*id) >= Dataset::OBSERVED_MIN_HITS)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_frames_carry_one_agent_per_vehicle() {
        let mut ds = FleetDataset::new(FleetDatasetConfig::test_small(4), 1);
        let frame = ds.next_frame();
        assert_eq!(frame.agents.len(), 4);
        for agent in &frame.agents {
            assert!(agent.scan.len() > 200, "each car should return a real scan");
        }
    }

    #[test]
    fn poses_match_fleet_ground_truth() {
        let mut ds = FleetDataset::new(FleetDatasetConfig::test_small(3), 2);
        let t = 1.0;
        let frame = ds.frame_at(t);
        for i in 0..3 {
            let expect = ds.fleet().trajectory(i).pose_at(t);
            assert!(frame.agents[i].pose.approx_eq(&expect, 1e-12, 1e-12));
        }
        // Pairwise relative poses derive from the same trajectories.
        let rel = ds.fleet().relative_pose(0, 2, t);
        let from_frames = frame.agents[0].pose.relative_from(&frame.agents[2].pose);
        assert!(rel.approx_eq(&from_frames, 1e-9, 1e-9));
    }

    #[test]
    fn neighbours_observe_each_other_in_a_tight_platoon() {
        let mut cfg = FleetDatasetConfig::test_small(3);
        cfg.fleet.spacing = 15.0;
        cfg.fleet.scenario.agent_separation = 15.0;
        let mut ds = FleetDataset::new(cfg, 3);
        let frame = ds.next_frame();
        // Adjacent cars 15 m apart must collect ≥ OBSERVED_MIN_HITS off
        // each other.
        let id1 = ds.fleet().vehicle_id(1);
        assert!(
            frame.agents[0].observed_vehicles.contains(&id1),
            "ego should observe the car ahead"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let make = |seed| {
            let mut ds = FleetDataset::new(FleetDatasetConfig::test_small(3), seed);
            ds.next_frame()
        };
        assert_eq!(make(5), make(5));
    }
}

//! Pose corruption: the error model applied to "GPS" poses in experiments.

use bba_geometry::Iso2;
use bba_scene::GaussianSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Zero-mean Gaussian pose noise (`σ_t` metres on each translation axis,
/// `σ_θ` radians on heading) — the corruption model of the paper's Table I
/// (`σ_t = 2 m`, `σ_θ = 2°`).
///
/// # Example
///
/// ```
/// use bba_dataset::PoseNoise;
/// use bba_geometry::{Iso2, Vec2};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let noise = PoseNoise::table1();
/// let truth = Iso2::new(0.1, Vec2::new(30.0, 2.0));
/// let mut rng = StdRng::seed_from_u64(1);
/// let corrupted = noise.corrupt(&truth, &mut rng);
/// let (dt, _) = corrupted.error_to(&truth);
/// assert!(dt > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseNoise {
    /// Standard deviation of translation noise per axis (m).
    pub sigma_t: f64,
    /// Standard deviation of rotation noise (radians).
    pub sigma_theta: f64,
}

impl PoseNoise {
    /// The paper's Table I setting: `σ_t = 2 m`, `σ_θ = 2°`.
    pub fn table1() -> Self {
        PoseNoise { sigma_t: 2.0, sigma_theta: 2f64.to_radians() }
    }

    /// No noise.
    pub fn none() -> Self {
        PoseNoise { sigma_t: 0.0, sigma_theta: 0.0 }
    }

    /// Applies the noise to a relative pose.
    pub fn corrupt<R: Rng + ?Sized>(&self, pose: &Iso2, rng: &mut R) -> Iso2 {
        let mut g = GaussianSampler::new();
        let t = pose.translation();
        Iso2::new(
            pose.yaw() + g.sample_scaled(rng, self.sigma_theta),
            bba_geometry::Vec2::new(
                t.x + g.sample_scaled(rng, self.sigma_t),
                t.y + g.sample_scaled(rng, self.sigma_t),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_geometry::Vec2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let truth = Iso2::new(0.5, Vec2::new(1.0, 2.0));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(PoseNoise::none().corrupt(&truth, &mut rng), truth);
    }

    #[test]
    fn table1_noise_statistics() {
        let noise = PoseNoise::table1();
        let truth = Iso2::new(0.0, Vec2::ZERO);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let mut t_sq = 0.0;
        let mut r_sq = 0.0;
        for _ in 0..n {
            let c = noise.corrupt(&truth, &mut rng);
            let (dt, dr) = c.error_to(&truth);
            t_sq += dt * dt;
            r_sq += dr * dr;
        }
        // E[dt²] = 2·σ_t² for two axes.
        let t_rms = (t_sq / n as f64).sqrt();
        assert!((t_rms - 2.0 * 2f64.sqrt()).abs() < 0.15, "t_rms {t_rms}");
        let r_rms = (r_sq / n as f64).sqrt();
        assert!((r_rms - 2f64.to_radians()).abs() < 0.005, "r_rms {r_rms}");
    }

    #[test]
    fn corruption_is_seed_deterministic() {
        let truth = Iso2::new(0.3, Vec2::new(10.0, -5.0));
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            PoseNoise::table1().corrupt(&truth, &mut rng)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}

//! A synthetic V2V4Real-like dataset: paired two-car perception frames.
//!
//! V2V4Real provides ~20 K frames of synchronized LiDAR from two vehicles
//! with ground-truth poses; the paper selects the ~12 K frames where the
//! cars commonly observe at least two vehicles. This crate reproduces that
//! shape: a seeded [`Dataset`] turns a `bba-scene` scenario into a lazy
//! stream of [`FramePair`]s, each holding both cars' scans, detections,
//! ground-truth poses and the ground-truth relative transform, plus the
//! paper's selection predicate ([`FramePair::common_vehicles`] ≥ 2).
//!
//! Pose corruption (the experiment input) lives here too:
//! [`PoseNoise`] adds zero-mean Gaussian error to a relative pose, matching
//! the paper's `σ_t = 2 m`, `σ_θ = 2°` protocol.
//!
//! # Example
//!
//! ```
//! use bba_dataset::{Dataset, DatasetConfig};
//!
//! let mut dataset = Dataset::new(DatasetConfig::test_small(), 42);
//! let pair = dataset.next_pair().unwrap();
//! assert!(pair.ego.scan.len() > 500);
//! // Ground truth maps other-frame points into the ego frame.
//! let rel = pair.true_relative;
//! assert!(rel.translation().norm() > 1.0);
//! ```

#![warn(missing_docs)]

pub mod fleet;
pub mod frame;
pub mod noise;

pub use fleet::{FleetDataset, FleetDatasetConfig, FleetFrame};
pub use frame::{AgentFrame, Dataset, DatasetConfig, FramePair};
pub use noise::PoseNoise;

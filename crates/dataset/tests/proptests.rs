//! Property-based tests for dataset generation and pose noise.

use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
use bba_geometry::{Iso2, Vec2};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn frame_pairs_are_internally_consistent(seed in 0u64..30, k in 0usize..3) {
        let mut ds = Dataset::new(DatasetConfig::test_small(), seed);
        let pair = (0..=k).map(|_| ds.next_pair().unwrap()).last().unwrap();
        // Relative pose algebra.
        let expect = pair.ego.pose.relative_from(&pair.other.pose);
        prop_assert!(pair.true_relative.approx_eq(&expect, 1e-9, 1e-9));
        // Common vehicles are a subset of each side's observations.
        for id in &pair.common_vehicles {
            prop_assert!(pair.ego.observed_vehicles.contains(id));
            prop_assert!(pair.other.observed_vehicles.contains(id));
        }
        // Ground truth excludes the ego car itself.
        let ego_id = ds.scenario().ego_id();
        prop_assert!(pair.gt_vehicles_ego.iter().all(|(id, _)| *id != ego_id));
        // GT boxes in the ego frame are near the sensor (within scan reach
        // plus the road extent).
        for (_, b) in &pair.gt_vehicles_ego {
            prop_assert!(b.center.xy().norm() < 400.0);
        }
    }

    #[test]
    fn pose_noise_scales_with_sigma(
        s_t in 0.1..5.0f64, s_r in 0.001..0.2f64, seed in 0u64..100,
    ) {
        let noise = PoseNoise { sigma_t: s_t, sigma_theta: s_r };
        let truth = Iso2::new(0.3, Vec2::new(20.0, -4.0));
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 300;
        let mut t_sq = 0.0;
        for _ in 0..n {
            let c = noise.corrupt(&truth, &mut rng);
            let (dt, _) = c.error_to(&truth);
            t_sq += dt * dt;
        }
        let rms = (t_sq / n as f64).sqrt();
        let expect = s_t * 2f64.sqrt(); // two axes
        prop_assert!((rms - expect).abs() < 0.35 * expect, "rms {rms} vs {expect}");
    }
}

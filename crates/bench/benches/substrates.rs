//! Criterion micro-benchmarks of the substrate layers: FFT, Log-Gabor/MIM,
//! BEV rasterisation, keypoints + descriptors, RANSAC, LiDAR simulation.
//!
//! These quantify the per-phase cost behind the paper's "lightweight"
//! claim and its future-work note on BV-matching time.

use bba_bev::{BevConfig, BevImage};
use bba_features::{
    describe_keypoints_rotated, detect_keypoints, ransac_rigid, DescriptorConfig, KeypointConfig,
    RansacConfig,
};
use bba_geometry::{Iso2, Vec2};
use bba_lidar::{LidarConfig, Scanner};
use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset};
use bba_signal::{
    fft2d, rfft2d, shared_plan, Complex, FftWorkspace, Grid, LogGaborBank, LogGaborConfig,
    MaxIndexMap,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sample_scan_points() -> Vec<bba_geometry::Vec3> {
    let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Suburban), 7);
    let scanner = Scanner::new(LidarConfig::mid_res_32());
    let mut rng = StdRng::seed_from_u64(1);
    let scan =
        scanner.scan(scenario.world(), scenario.ego_trajectory(), 0.0, scenario.ego_id(), &mut rng);
    scan.points().iter().map(|p| p.position).collect()
}

fn bench_fft(c: &mut Criterion) {
    // Complex vs real forward 2-D transform at the pipeline-relevant sizes.
    // Plans are built (and cached process-wide) before the timed region, so
    // these measure transform throughput, not planning.
    for size in [128usize, 256, 512] {
        let img = Grid::from_fn(size, size, |u, v| ((u * 7 + v * 13) % 17) as f64);
        shared_plan(size).unwrap();
        c.bench_function(&format!("fft2d_{size}"), |b| b.iter(|| fft2d(black_box(&img)).unwrap()));
        c.bench_function(&format!("rfft2d_{size}"), |b| {
            b.iter(|| rfft2d(black_box(&img)).unwrap())
        });
        // Planned 1-D kernel alone (one row-length transform), the unit the
        // 2-D passes are built from.
        let plan = shared_plan(size).unwrap();
        let row: Vec<Complex> =
            (0..size).map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0)).collect();
        c.bench_function(&format!("planned_fft1d_{size}"), |b| {
            b.iter_batched(
                || row.clone(),
                |mut buf| plan.forward(black_box(&mut buf)),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_bev(c: &mut Criterion) {
    let points = sample_scan_points();
    let cfg = BevConfig::wide();
    c.bench_function("bev_height_map_256", |b| {
        b.iter(|| BevImage::height_map(black_box(points.iter().copied()), &cfg))
    });
}

fn bench_mim(c: &mut Criterion) {
    let points = sample_scan_points();
    let cfg = BevConfig::wide();
    let img = BevImage::height_map(points, &cfg);
    let bank = LogGaborBank::new(256, 256, LogGaborConfig::default());
    c.bench_function("mim_256_4scales_12orient", |b| {
        b.iter(|| MaxIndexMap::compute_with_bank(black_box(img.grid()), &bank))
    });
    // Steady-state variant: the workspace is warm, so the Log-Gabor
    // filtering allocates nothing per iteration.
    let mut ws = FftWorkspace::new();
    MaxIndexMap::compute_with_workspace(img.grid(), &bank, &mut ws);
    c.bench_function("mim_256_warm_workspace", |b| {
        b.iter(|| MaxIndexMap::compute_with_workspace(black_box(img.grid()), &bank, &mut ws))
    });
}

fn bench_features(c: &mut Criterion) {
    let points = sample_scan_points();
    let cfg = BevConfig::wide();
    let img = BevImage::height_map(points, &cfg);
    let bank = LogGaborBank::new(256, 256, LogGaborConfig::default());
    let mim = MaxIndexMap::compute_with_bank(img.grid(), &bank);
    let max = mim.amplitude.max_value();
    let norm = mim.amplitude.map(|&a| a / max);
    let kp_cfg = KeypointConfig { threshold: 0.05, ..Default::default() };

    c.bench_function("fast_keypoints_256", |b| {
        b.iter(|| detect_keypoints(black_box(&norm), &kp_cfg))
    });

    let kps = detect_keypoints(&norm, &kp_cfg);
    let d_cfg = DescriptorConfig::default();
    c.bench_function("bvft_descriptors", |b| {
        b.iter(|| describe_keypoints_rotated(black_box(&mim), &kps, &d_cfg, 0.0))
    });
}

fn bench_ransac(c: &mut Criterion) {
    let truth = Iso2::new(0.3, Vec2::new(5.0, -2.0));
    let src: Vec<Vec2> =
        (0..120).map(|i| Vec2::new((i * 17 % 97) as f64, (i * 31 % 89) as f64)).collect();
    let dst: Vec<Vec2> = src
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            if i % 3 == 0 {
                Vec2::new(500.0 + i as f64, -300.0) // outliers
            } else {
                truth.apply(p)
            }
        })
        .collect();
    let cfg = RansacConfig::default();
    c.bench_function("ransac_rigid_120pts_33pct_outliers", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(5),
            |mut rng| ransac_rigid(black_box(&src), &dst, &cfg, &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_lidar(c: &mut Criterion) {
    let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Suburban), 7);
    let scanner = Scanner::new(LidarConfig::mid_res_32());
    c.bench_function("lidar_scan_32ch", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(2),
            |mut rng| {
                scanner.scan(
                    scenario.world(),
                    scenario.ego_trajectory(),
                    0.0,
                    scenario.ego_id(),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fft, bench_bev, bench_mim, bench_features, bench_ransac, bench_lidar
}
criterion_main!(benches);

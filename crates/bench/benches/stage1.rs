//! Micro-benchmarks of the stage-1 fast paths against their naive
//! references, on descriptors extracted from a real simulated frame:
//!
//! * **describe** — the sample-once + per-hypothesis re-bin sweep vs the
//!   full per-angle re-sample (`describe_keypoints_rotated`), over the
//!   production rotation-hypothesis count.
//! * **match** — the blocked dot-product kernel (`match_sets`) vs the
//!   naive full-sort reference (`match_sets_naive`), at ~100 and ~400
//!   keypoints.
//!
//! Both pairs are proven bit-identical by the proptests in
//! `crates/features/tests/proptests.rs`; this bench measures the speed
//! side of that equivalence. Pass `--quick` for the CI smoke run (fewer
//! iterations, same workloads).

use bb_align::{BbAlign, BbAlignConfig};
use bba_dataset::{Dataset, DatasetConfig};
use bba_features::matcher::match_sets_naive;
use bba_features::{
    describe_keypoints_rotated, detect_keypoints, match_sets, DescriptorSet, Keypoint,
    KeypointConfig, PatchSamples, RotationSweep,
};
use bba_signal::MaxIndexMap;
use criterion::{black_box, Criterion};
use std::f64::consts::TAU;

/// One simulated frame's MIM plus up to `max_keypoints` detected keypoints —
/// the same inputs `match_bv` feeds the describe/match hot path.
fn fixture(
    engine: &BbAlignConfig,
    seed: u64,
    max_keypoints: usize,
) -> (MaxIndexMap, Vec<Keypoint>) {
    let aligner = BbAlign::new(engine.clone());
    let mut ds = Dataset::new(DatasetConfig::standard(), seed);
    let pair = ds.next_pair().unwrap();
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let mim = MaxIndexMap::compute(other.bev().grid(), &engine.log_gabor);
    // Production keypoint source: FAST corners on the normalised amplitude.
    let max = mim.amplitude.max_value();
    let normalised = mim.amplitude.map(|&a| a / max.max(f64::MIN_POSITIVE));
    let kp_cfg = KeypointConfig { max_keypoints, ..engine.keypoints.clone() };
    let kps = detect_keypoints(&normalised, &kp_cfg);
    (mim, kps)
}

/// A `DescriptorSet` truncated to its first `n` rows.
fn truncated(set: &DescriptorSet, n: usize) -> DescriptorSet {
    let descs = set.to_descriptors();
    DescriptorSet::from_descriptors(&descs[..n.min(descs.len())])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let engine = BbAlignConfig::default();
    let angles: Vec<f64> = (0..engine.rotation_hypotheses)
        .map(|k| k as f64 * TAU / engine.rotation_hypotheses as f64)
        .collect();

    let (mim, kps) = fixture(&engine, 7, 400);
    println!(
        "stage1 fast-path benches: {} keypoints, {} rotation hypotheses{}",
        kps.len(),
        angles.len(),
        if quick { " (quick)" } else { "" }
    );

    let mut c = Criterion::default().sample_size(if quick { 2 } else { 15 });
    let dcfg = &engine.descriptor;
    let sweep = RotationSweep::new(dcfg, mim.num_orientations, &angles);

    // Describe: one full sweep of every hypothesis, both ways.
    c.bench_function("describe_full_resample_sweep", |b| {
        b.iter(|| {
            for &angle in &angles {
                black_box(describe_keypoints_rotated(&mim, &kps, dcfg, angle));
            }
        })
    });
    let mut samples = PatchSamples::new();
    let mut set = DescriptorSet::new(sweep.dim());
    c.bench_function("describe_sample_once_rebin_sweep", |b| {
        b.iter(|| {
            samples.sample(&mim, &kps, dcfg);
            for k in 0..angles.len() {
                samples.rebin_into(&sweep, k, &mut set);
                black_box(set.len());
            }
        })
    });

    // Match: real descriptors (hypothesis 0) against the same patches
    // re-binned one hypothesis step away — the exact shape of one sweep
    // iteration. A single frame yields ~100 keypoints; descriptors are
    // pooled across further dataset seeds so the 400-row case measures a
    // realistically dense scene, not synthetic vectors.
    let mut dst = DescriptorSet::new(sweep.dim());
    let mut src = DescriptorSet::new(sweep.dim());
    let mut first_frame = Some((mim, kps));
    for seed in 7.. {
        let (mim, kps) = first_frame.take().unwrap_or_else(|| fixture(&engine, seed, 400));
        let mut smp = PatchSamples::new();
        smp.sample(&mim, &kps, dcfg);
        for (hyp, pool) in [(0, &mut dst), (1 % angles.len(), &mut src)] {
            let set = smp.rebin(&sweep, hyp);
            for i in 0..set.len() {
                pool.push(*set.keypoint(i), set.row(i));
            }
        }
        if dst.len() >= 400 && src.len() >= 400 {
            break;
        }
    }
    let mcfg = &engine.matcher;
    let mut benched = std::collections::HashSet::new();
    for n in [100, 400] {
        let (s, d) = (truncated(&src, n), truncated(&dst, n));
        let label_n = s.len().min(d.len());
        if label_n == 0 || !benched.insert(label_n) {
            continue;
        }
        c.bench_function(&format!("match_kernel_{label_n}kp"), |b| {
            b.iter(|| black_box(match_sets(&s, &d, mcfg)))
        });
        c.bench_function(&format!("match_naive_{label_n}kp"), |b| {
            b.iter(|| black_box(match_sets_naive(&s, &d, mcfg)))
        });
    }
}

//! Criterion benchmarks of the end-to-end pipelines: full BB-Align
//! recovery, stage 1 alone, the VIPS baseline and 2-D ICP.
//!
//! The recovery latency is the quantity behind the paper's future-work
//! note ("enhancing the time efficiency of BV image matching").

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame};
use bba_baselines::icp::{icp_2d, IcpConfig};
use bba_baselines::vips::{vips_match, VipsConfig};
use bba_dataset::{Dataset, DatasetConfig, FramePair};
use bba_geometry::{Iso2, Vec2};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pair_and_frames(aligner: &BbAlign) -> (FramePair, PerceptionFrame, PerceptionFrame) {
    let mut ds = Dataset::new(DatasetConfig::standard(), 7);
    let pair = ds.next_pair().unwrap();
    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    (pair, ego, other)
}

fn bench_recovery(c: &mut Criterion) {
    let aligner = BbAlign::new(BbAlignConfig::default());
    let (_, ego, other) = pair_and_frames(&aligner);
    // Warm the filter-bank cache so the bench measures recovery only.
    let mut warm = StdRng::seed_from_u64(0);
    let _ = aligner.recover(&ego, &other, &mut warm);

    c.bench_function("bb_align_full_recovery", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| aligner.recover(black_box(&ego), &other, &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("bb_align_stage1_only", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| aligner.match_bv(black_box(&ego), &other, &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_baselines(c: &mut Criterion) {
    let aligner = BbAlign::new(BbAlignConfig::default());
    let (pair, _, _) = pair_and_frames(&aligner);
    let centers = |dets: &[bba_detect::Detection]| -> Vec<Vec2> {
        dets.iter().map(|d| d.box3.center.xy()).collect()
    };
    let src = centers(&pair.other.detections);
    let dst = centers(&pair.ego.detections);
    let cfg = VipsConfig::default();
    c.bench_function("vips_graph_matching", |b| {
        b.iter(|| {
            let _ = vips_match(black_box(&src), &dst, &cfg);
        })
    });

    // ICP over the raw ground-plane points (downsampled), from the true
    // pose plus a small offset — its favourable regime.
    let take_every = 20;
    let src_pts: Vec<Vec2> =
        pair.other.scan.points().iter().step_by(take_every).map(|p| p.position.xy()).collect();
    let dst_pts: Vec<Vec2> =
        pair.ego.scan.points().iter().step_by(take_every).map(|p| p.position.xy()).collect();
    let init = Iso2::new(
        pair.true_relative.yaw() + 0.01,
        pair.true_relative.translation() + Vec2::new(0.4, -0.2),
    );
    let icp_cfg = IcpConfig::default();
    c.bench_function("icp_2d_downsampled", |b| {
        b.iter(|| {
            let _ = icp_2d(black_box(&src_pts), &dst_pts, init, &icp_cfg);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_recovery, bench_baselines
}
criterion_main!(benches);

//! Micro-benchmarks of the `bba-simd` kernel layer: each dispatched kernel
//! (AVX2 on capable hosts, chunked scalar otherwise) against its portable
//! scalar reference, on hot-path-shaped workloads:
//!
//! * **filter apply** — the Log-Gabor frequency-domain complex pointwise
//!   multiply, at the production 256² BV spectrum size.
//! * **fused amp + argmax** — the final-scale-pair amplitude completion and
//!   running `(max_amp, max_idx)` fold of the fused MIM reduction.
//! * **soft-bin accumulate** — the LUT-driven descriptor re-bin gather
//!   (`rebin_row`) over a realistic gated-sample count.
//! * **dot microkernel** — the matcher's four-lane blocked `f32` dot at the
//!   production descriptor dimension.
//!
//! Every pair is proven bit-identical by the proptests in
//! `crates/simd/tests/equivalence.rs`; this bench measures the speed side.
//! Pass `--quick` for the CI smoke run (fewer iterations, same workloads).

use bba_simd::SoftBinLut;
use criterion::{black_box, Criterion};

/// Deterministic pseudo-random stream in `[-1, 1)` — no RNG dependency, and
/// every run (and both kernels of a pair) sees identical data.
fn lcg(state: &mut u64) -> f64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "simd kernel benches: dispatch = {}{}",
        bba_simd::name(),
        if quick { " (quick)" } else { "" }
    );
    let mut c = Criterion::default().sample_size(if quick { 10 } else { 60 });

    let mut s = 0x5EED_u64;
    let px = 256 * 256; // production BV image size
    let n = 2 * px; // interleaved complexes

    // Filter apply: spectrum × packed filter pair.
    let spec: Vec<f64> = (0..n).map(|_| lcg(&mut s)).collect();
    let filt: Vec<f64> = (0..n).map(|_| lcg(&mut s)).collect();
    let mut dst = vec![0.0f64; n];
    c.bench_function("simd_filter_apply_cmul_256", |b| {
        b.iter(|| bba_simd::cmul(black_box(&mut dst), &spec, &filt))
    });
    c.bench_function("simd_filter_apply_cmul_256_portable", |b| {
        b.iter(|| bba_simd::portable::cmul(black_box(&mut dst), &spec, &filt))
    });

    // Fused amplitude + running argmax: the final scale pair of one
    // orientation folding into the lane maxima, with a partial sum.
    let z: Vec<f64> = (0..n).map(|_| lcg(&mut s)).collect();
    let partial: Vec<f64> = (0..px).map(|_| lcg(&mut s).abs()).collect();
    let mut max_amp = vec![f64::NEG_INFINITY; px];
    let mut max_idx = vec![0u8; px];
    let scale = 1.0 / px as f64;
    c.bench_function("simd_fused_amp_argmax_256", |b| {
        b.iter(|| {
            bba_simd::amp_max_fold(
                black_box(&mut max_amp),
                &mut max_idx,
                &z,
                scale,
                true,
                Some(&partial),
                3,
            )
        })
    });
    c.bench_function("simd_fused_amp_argmax_256_portable", |b| {
        b.iter(|| {
            bba_simd::portable::amp_max_fold(
                black_box(&mut max_amp),
                &mut max_idx,
                &z,
                scale,
                true,
                Some(&partial),
                3,
            )
        })
    });

    // Soft-bin accumulate: one descriptor row re-binned from a realistic
    // gated-sample count (production patches carry a few thousand samples).
    let n_o = 12usize;
    let grid = 6usize;
    let dim = grid * grid * n_o;
    let n_samples = 4096usize;
    let window = 69usize; // patch 48 → reach 34 → window 69
    let n_cells = window * window;
    let mut lut = SoftBinLut::new();
    let bin_shift = 2.37f64;
    for raw in 0..n_o {
        let shifted = (raw as f64 - bin_shift).rem_euclid(n_o as f64);
        let lo = (shifted.floor() as usize) % n_o;
        lut.push(lo, (lo + 1) % n_o, shifted - shifted.floor());
    }
    let cell_table: Vec<u8> = (0..n_cells)
        .map(|i| if i % 7 == 0 { u8::MAX } else { ((i * 13) % (grid * grid)) as u8 })
        .collect();
    let weights: Vec<f64> = (0..n_samples).map(|_| lcg(&mut s).abs()).collect();
    let offsets: Vec<u32> = (0..n_samples).map(|i| ((i * 29) % n_cells) as u32).collect();
    let indices: Vec<u8> = (0..n_samples).map(|i| ((i * 5) % n_o) as u8).collect();
    let mut row = vec![0.0f32; dim];
    c.bench_function("simd_soft_bin_rebin_4096", |b| {
        b.iter(|| {
            bba_simd::rebin_row(
                black_box(&mut row),
                &weights,
                &offsets,
                &indices,
                &cell_table,
                u8::MAX,
                n_o,
                &lut,
            )
        })
    });
    c.bench_function("simd_soft_bin_rebin_4096_portable", |b| {
        b.iter(|| {
            bba_simd::portable::rebin_row(
                black_box(&mut row),
                &weights,
                &offsets,
                &indices,
                &cell_table,
                u8::MAX,
                n_o,
                &lut,
            )
        })
    });

    // Dot microkernel at the production descriptor dimension.
    let a: Vec<f32> = (0..dim).map(|_| lcg(&mut s) as f32).collect();
    let bvec: Vec<f32> = (0..dim).map(|_| lcg(&mut s) as f32).collect();
    c.bench_function("simd_dot_432", |b| {
        b.iter(|| black_box(bba_simd::dot_f32(black_box(&a), black_box(&bvec))))
    });
    c.bench_function("simd_dot_432_portable", |b| {
        b.iter(|| black_box(bba_simd::portable::dot_f32(black_box(&a), black_box(&bvec))))
    });
}

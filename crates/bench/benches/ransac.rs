//! Micro-benchmarks of the RANSAC fast path against the naive reference
//! scorer, at 100 and 400 correspondences with a stage-1-like outlier mix.
//!
//! Two regimes per size:
//!
//! * **early exit reachable** — the production `early_exit_fraction`
//!   (clean majority of inliers, the scan stops as soon as a strong model
//!   appears), and
//! * **no early exit** — `early_exit_fraction` above 1.0 forces the full
//!   iteration budget, isolating the per-hypothesis savings (SoA counting
//!   kernel, max-consensus bail, duplicate memoisation, PROSAC preview).
//!
//! The fast↔naive bit-identity is proven by the proptests in
//! `crates/features/tests/proptests.rs`; this bench measures the speed
//! side. Pass `--quick` for the CI smoke run.

use bba_features::{ransac_rigid_guided, ransac_rigid_naive, RansacConfig};
use bba_geometry::{Iso2, Vec2};
use criterion::{black_box, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Correspondences with ~1/3 gross outliers plus a quality channel that
/// (imperfectly) ranks inliers first — the shape the matcher hands RANSAC.
fn fixture(n: usize, seed: u64) -> (Vec<Vec2>, Vec<Vec2>, Vec<f64>) {
    let truth = Iso2::new(0.45, Vec2::new(12.0, -7.0));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = Vec::with_capacity(n);
    let mut dst = Vec::with_capacity(n);
    let mut quality = Vec::with_capacity(n);
    for k in 0..n {
        let p = Vec2::new(rng.random_range(0.0..256.0), rng.random_range(0.0..256.0));
        src.push(p);
        if k % 3 == 0 {
            // Gross outlier: unrelated destination, poor quality.
            dst.push(Vec2::new(rng.random_range(0.0..256.0), rng.random_range(0.0..256.0)));
            quality.push(rng.random_range(5.0..9.0));
        } else {
            // Inlier with sub-threshold jitter and a good (low) quality.
            let jitter = Vec2::new(rng.random_range(-0.5..0.5), rng.random_range(-0.5..0.5));
            dst.push(truth.apply(p) + jitter);
            quality.push(rng.random_range(0.1..2.0));
        }
    }
    (src, dst, quality)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut c = Criterion::default().sample_size(if quick { 2 } else { 20 });

    // The stage-1 production configuration (see `RecoveryConfig::default`):
    // 3000 iterations, 2 px threshold, exit at 70% inliers.
    let exit_cfg = RansacConfig {
        max_iterations: 3000,
        inlier_threshold: 2.0,
        min_inliers: 6,
        early_exit_fraction: 0.7,
    };
    // Unreachable exit fraction: every hypothesis in the budget is scanned.
    let full_cfg = RansacConfig { early_exit_fraction: 2.0, ..exit_cfg.clone() };

    for n in [100usize, 400] {
        let (src, dst, quality) = fixture(n, 42);
        for (regime, cfg) in [("exit", &exit_cfg), ("noexit", &full_cfg)] {
            c.bench_function(&format!("ransac_naive_{n}pts_{regime}"), |b| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    black_box(ransac_rigid_naive(&src, &dst, cfg, &mut rng))
                })
            });
            c.bench_function(&format!("ransac_fast_{n}pts_{regime}"), |b| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    black_box(ransac_rigid_guided(&src, &dst, None, cfg, &mut rng))
                })
            });
            c.bench_function(&format!("ransac_fast_guided_{n}pts_{regime}"), |b| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    black_box(ransac_rigid_guided(&src, &dst, Some(&quality), cfg, &mut rng))
                })
            });
        }
    }
}

//! Schema checks for the checked-in `results/timing_breakdown.json`.
//!
//! The vendored `serde_json` keeps objects as ordered `(key, value)` pairs
//! and will serialise duplicate keys without complaint, which is how the
//! breakdown once emitted two `median_1thr_ms` fields per phase on a
//! 1-thread host. This test parses every phase record of the committed
//! artifact and rejects duplicate keys anywhere in the document, so a
//! regression cannot land silently again.

use bba_bench::report::duplicate_key_path;
use serde_json::Value;

fn results_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/timing_breakdown.json")
}

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[test]
fn timing_breakdown_phases_have_unique_well_formed_keys() {
    let raw = std::fs::read_to_string(results_path())
        .expect("results/timing_breakdown.json is committed alongside the code");
    let doc: Value = serde_json::from_str(&raw).expect("artifact parses as JSON");

    assert_eq!(
        duplicate_key_path(&doc),
        None,
        "results/timing_breakdown.json binds a key twice — regenerate it with \
         `cargo run --release -p bba-bench --bin timing_breakdown`"
    );

    let Value::Map(root) = &doc else { panic!("root must be an object") };
    let Some(Value::Seq(phases)) = field(root, "phases") else {
        panic!("root must carry a `phases` array")
    };
    assert!(!phases.is_empty(), "at least one phase record expected");
    for (i, phase) in phases.iter().enumerate() {
        let Value::Map(entries) = phase else { panic!("phase {i} must be an object") };
        for key in ["label", "median_1thr_ms", "p90_1thr_ms", "median_nthr_ms", "speedup"] {
            assert!(
                field(entries, key).is_some(),
                "phase {i} is missing `{key}` (found keys: {:?})",
                entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>()
            );
        }
        assert!(
            matches!(field(entries, "label"), Some(Value::Str(s)) if !s.is_empty()),
            "phase {i} label must be a non-empty string"
        );
    }
}

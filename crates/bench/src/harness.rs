//! The frame-pair pool driver shared by all experiment binaries.
//!
//! A *pool* is a set of frame pairs drawn from many seeded scenarios (so
//! results are not hostage to one world). For every pair the harness runs
//! the full BB-Align pipeline and the VIPS graph-matching baseline, and
//! records errors, inlier counts and covariates (distance, common cars) —
//! the raw material each figure slices differently.

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame, Recovery};
use bba_baselines::vips::{vips_match, VipsConfig};
use bba_dataset::{Dataset, DatasetConfig, FramePair};
use bba_geometry::Vec2;
use bba_scene::{ScenarioConfig, ScenarioPreset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// What a pool evaluates per frame pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairRecord {
    /// Pool index of the pair.
    pub index: usize,
    /// Ground-truth inter-vehicle distance (m).
    pub distance: f64,
    /// Commonly observed surrounding cars.
    pub common_cars: usize,
    /// BB-Align outcome (`None` = stage-1 failure).
    pub bb: Option<RecoveryStats>,
    /// VIPS baseline errors `(translation m, rotation rad)`
    /// (`None` = matching failed).
    pub vips: Option<(f64, f64)>,
}

/// BB-Align per-pair statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Final translation error (m).
    pub dt: f64,
    /// Final rotation error (rad).
    pub dr: f64,
    /// Stage-1-only translation error (m).
    pub stage1_dt: f64,
    /// Stage-1-only rotation error (rad).
    pub stage1_dr: f64,
    /// `Inliers_bv`.
    pub inliers_bv: usize,
    /// `Inliers_box` (0 when stage 2 did not engage).
    pub inliers_box: usize,
    /// Overlapping box pairs in stage 2.
    pub box_pairs: usize,
    /// Paper success criterion met.
    pub success: bool,
    /// Wall-clock recovery time (ms), excluding simulation.
    pub elapsed_ms: f64,
}

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Total frame pairs to evaluate.
    pub frames: usize,
    /// Master seed.
    pub seed: u64,
    /// Scenario presets, cycled across scenarios.
    pub presets: Vec<ScenarioPreset>,
    /// Agent separations (m), cycled across scenarios; empty = preset
    /// defaults.
    pub separations: Vec<f64>,
    /// Traffic vehicle counts, cycled across scenarios; empty = preset
    /// defaults (the Figs. 8/12 common-car sweep).
    pub traffic_counts: Vec<usize>,
    /// Frame pairs drawn per generated scenario (time-consecutive).
    pub frames_per_scenario: usize,
    /// Dataset template (sensors, detector, intervals).
    pub dataset: DatasetConfig,
    /// BB-Align engine configuration.
    pub engine: BbAlignConfig,
    /// Also run the VIPS baseline.
    pub run_vips: bool,
    /// Print progress to stderr.
    pub progress: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            frames: 60,
            seed: 2024,
            presets: vec![ScenarioPreset::Urban, ScenarioPreset::Suburban, ScenarioPreset::Highway],
            separations: Vec::new(),
            traffic_counts: Vec::new(),
            frames_per_scenario: 4,
            dataset: DatasetConfig::standard(),
            engine: BbAlignConfig::default(),
            run_vips: true,
            progress: true,
        }
    }
}

/// Builds the transmissible perception frames of a pair.
pub fn frames_of(aligner: &BbAlign, pair: &FramePair) -> (PerceptionFrame, PerceptionFrame) {
    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    (ego, other)
}

/// Runs BB-Align on one pair, returning stats against ground truth.
pub fn evaluate_bb_align(
    aligner: &BbAlign,
    pair: &FramePair,
    rng: &mut StdRng,
) -> Option<(Recovery, RecoveryStats)> {
    let start = Instant::now();
    let (ego, other) = frames_of(aligner, pair);
    let recovery = aligner.recover(&ego, &other, rng).ok()?;
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let (dt, dr) = recovery.transform.error_to(&pair.true_relative);
    let (s1t, s1r) = recovery.bv.transform.error_to(&pair.true_relative);
    let stats = RecoveryStats {
        dt,
        dr,
        stage1_dt: s1t,
        stage1_dr: s1r,
        inliers_bv: recovery.inliers_bv(),
        inliers_box: recovery.inliers_box(),
        box_pairs: recovery.box_alignment.as_ref().map_or(0, |b| b.box_pairs),
        success: recovery.is_success(),
        elapsed_ms,
    };
    Some((recovery, stats))
}

/// Runs the VIPS baseline on one pair (detected box centres as graph
/// nodes), returning `(translation, rotation)` errors.
pub fn evaluate_vips(pair: &FramePair) -> Option<(f64, f64)> {
    let centers = |dets: &[bba_detect::Detection]| -> Vec<Vec2> {
        dets.iter().filter(|d| d.confidence >= 0.3).map(|d| d.box3.center.xy()).collect()
    };
    let src = centers(&pair.other.detections);
    let dst = centers(&pair.ego.detections);
    let result = vips_match(&src, &dst, &VipsConfig::default()).ok()?;
    let (dt, dr) = result.transform.error_to(&pair.true_relative);
    Some((dt, dr))
}

/// Runs a pool and returns one record per frame pair.
///
/// Scenarios are evaluated in parallel (frame-level parallelism): every
/// scenario seeds its own dataset and rng from the master seed alone, so
/// collecting the per-scenario record slices in scenario order reproduces
/// the serial record stream bit for bit at any thread count.
pub fn run_pool(cfg: &PoolConfig) -> Vec<PairRecord> {
    let aligner = BbAlign::new(cfg.engine.clone());
    let per = cfg.frames_per_scenario.max(1);
    let n_scenarios = cfg.frames.div_ceil(per);

    let per_scenario: Vec<Vec<PairRecord>> = bba_par::par_map_indices(n_scenarios, |s| {
        let preset = cfg.presets[s % cfg.presets.len().max(1)];
        let mut scenario_cfg = ScenarioConfig::preset(preset);
        if !cfg.separations.is_empty() {
            scenario_cfg = scenario_cfg.with_separation(cfg.separations[s % cfg.separations.len()]);
        }
        if !cfg.traffic_counts.is_empty() {
            scenario_cfg =
                scenario_cfg.with_traffic(cfg.traffic_counts[s % cfg.traffic_counts.len()]);
        }
        let mut dataset_cfg = cfg.dataset.clone();
        dataset_cfg.scenario = scenario_cfg;
        let mut dataset = Dataset::new(dataset_cfg, cfg.seed.wrapping_add(s as u64 * 7919));
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (s as u64).wrapping_mul(0xD129_53FB));

        let count = per.min(cfg.frames - s * per);
        let mut out = Vec::with_capacity(count);
        for k in 0..count {
            let index = s * per + k;
            let pair = dataset.next_pair().expect("dataset streams indefinitely");
            let bb = evaluate_bb_align(&aligner, &pair, &mut rng).map(|(_, stats)| stats);
            let vips = if cfg.run_vips { evaluate_vips(&pair) } else { None };
            out.push(PairRecord {
                index,
                distance: pair.distance,
                common_cars: pair.common_vehicles.len(),
                bb,
                vips,
            });
        }
        if cfg.progress {
            eprintln!("  [scenario {}/{n_scenarios} done]", s + 1);
        }
        out
    });
    per_scenario.into_iter().flatten().collect()
}

/// Writes the raw per-pair records as pretty JSON when the user passed
/// `--json PATH` — the escape hatch for custom plotting/analysis on top of
/// the printed tables.
pub fn maybe_dump_json(records: &[PairRecord], opts: &crate::cli::Options) {
    let Some(path) = &opts.json else { return };
    match serde_json::to_string_pretty(records) {
        Ok(json) => match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {} records to {}", records.len(), path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("failed to serialise records: {e}"),
    }
}

/// Compares several engine configurations on the *same* pool of frame
/// pairs and prints one summary row per variant (shared helper for the
/// ablation binaries).
pub fn compare_engines(variants: &[(&str, BbAlignConfig)], frames: usize, seed: u64) {
    use crate::report::{opt, pct, print_table};
    use crate::stats::{fraction_below, percentile};

    let mut rows = vec![vec![
        "variant".to_string(),
        "solved".to_string(),
        "median dt (m)".to_string(),
        "<1 m".to_string(),
        "median dr (°)".to_string(),
        "median ms".to_string(),
    ]];
    for (label, engine) in variants {
        let mut cfg = PoolConfig { frames, seed, run_vips: false, ..PoolConfig::default() };
        cfg.engine = engine.clone();
        let records = run_pool(&cfg);
        let dts: Vec<f64> = bb_translation_errors(&records);
        let drs: Vec<f64> = bb_rotation_errors_deg(&records);
        let ms: Vec<f64> =
            records.iter().filter_map(|r| r.bb.as_ref().map(|b| b.elapsed_ms)).collect();
        rows.push(vec![
            label.to_string(),
            format!("{}/{}", dts.len(), records.len()),
            opt(percentile(&dts, 50.0), 2),
            pct(fraction_below(&dts, 1.0)),
            opt(percentile(&drs, 50.0), 2),
            opt(percentile(&ms, 50.0), 0),
        ]);
    }
    print_table(&rows);
}

/// Translation errors of successful BB-Align recoveries in a record set.
pub fn bb_translation_errors(records: &[PairRecord]) -> Vec<f64> {
    records.iter().filter_map(|r| r.bb.as_ref().map(|b| b.dt)).collect()
}

/// Rotation errors (degrees) of successful BB-Align recoveries.
pub fn bb_rotation_errors_deg(records: &[PairRecord]) -> Vec<f64> {
    records.iter().filter_map(|r| r.bb.as_ref().map(|b| b.dr.to_degrees())).collect()
}

/// Translation errors of successful VIPS matches.
pub fn vips_translation_errors(records: &[PairRecord]) -> Vec<f64> {
    records.iter().filter_map(|r| r.vips.map(|(dt, _)| dt)).collect()
}

/// Rotation errors (degrees) of successful VIPS matches.
pub fn vips_rotation_errors_deg(records: &[PairRecord]) -> Vec<f64> {
    records.iter().filter_map(|r| r.vips.map(|(_, dr)| dr.to_degrees())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bba_bev::BevConfig;

    /// A fast pool config for tests: coarse sensors, small BEV raster.
    pub fn test_pool(frames: usize, seed: u64) -> PoolConfig {
        let mut engine = BbAlignConfig {
            bev: BevConfig { range: 102.4, resolution: 1.6 }, // 128²
            min_inliers_bv: 10,
            ..BbAlignConfig::default()
        };
        engine.descriptor.patch_size = 24;
        engine.descriptor.grid_size = 4;
        PoolConfig {
            frames,
            seed,
            presets: vec![ScenarioPreset::Urban],
            separations: vec![30.0],
            traffic_counts: Vec::new(),
            frames_per_scenario: 2,
            dataset: DatasetConfig::test_small(),
            engine,
            run_vips: true,
            progress: false,
        }
    }

    #[test]
    fn pool_produces_requested_records() {
        let records = run_pool(&test_pool(4, 5));
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.distance > 0.0);
        }
    }

    #[test]
    fn pool_is_deterministic() {
        // Wall-clock timing is the only nondeterministic field.
        let strip = |mut rs: Vec<PairRecord>| {
            for r in &mut rs {
                if let Some(b) = &mut r.bb {
                    b.elapsed_ms = 0.0;
                }
            }
            rs
        };
        let a = strip(run_pool(&test_pool(3, 9)));
        let b = strip(run_pool(&test_pool(3, 9)));
        assert_eq!(a, b);
    }

    #[test]
    fn error_extractors_filter_failures() {
        let records = vec![
            PairRecord { index: 0, distance: 30.0, common_cars: 3, bb: None, vips: None },
            PairRecord {
                index: 1,
                distance: 30.0,
                common_cars: 3,
                bb: Some(RecoveryStats {
                    dt: 0.5,
                    dr: 0.01,
                    stage1_dt: 0.7,
                    stage1_dr: 0.01,
                    inliers_bv: 30,
                    inliers_box: 8,
                    box_pairs: 2,
                    success: true,
                    elapsed_ms: 10.0,
                }),
                vips: Some((1.5, 0.02)),
            },
        ];
        assert_eq!(bb_translation_errors(&records), vec![0.5]);
        assert_eq!(vips_translation_errors(&records), vec![1.5]);
        assert_eq!(bb_rotation_errors_deg(&records).len(), 1);
        assert_eq!(vips_rotation_errors_deg(&records).len(), 1);
    }

    #[test]
    fn most_urban_recoveries_succeed() {
        let records = run_pool(&test_pool(4, 33));
        let ok = records.iter().filter(|r| r.bb.is_some()).count();
        assert!(ok >= 2, "expected mostly successful recoveries, got {ok}/4");
    }
}

//! Aligned plain-text tables for experiment output.

/// Prints a header banner for an experiment, including the active SIMD
/// kernel dispatch — perf numbers from an `avx2` host and a `portable`
/// fallback host are not comparable, so every artifact names its path.
pub fn banner(title: &str, detail: &str) {
    println!("\n=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!("simd dispatch: {}", bba_simd::name());
    println!();
}

/// Renders rows as an aligned text table. The first row is the header.
///
/// ```
/// use bba_bench::report::render_table;
/// let t = render_table(&[
///     vec!["method".into(), "AP".into()],
///     vec!["BB-Align".into(), "0.71".into()],
/// ]);
/// assert!(t.contains("BB-Align"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("{cell:<width$}  ", width = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Prints a rendered table.
pub fn print_table(rows: &[Vec<String>]) {
    print!("{}", render_table(rows));
}

/// Formats a fraction as a percentage string.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", 100.0 * fraction)
}

/// Formats an `Option<f64>` metric with fixed decimals, or `-`.
pub fn opt(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:.decimals$}"),
        None => "-".into(),
    }
}

/// Writes a machine-readable result blob to `results/<name>.json`,
/// alongside the human-readable `.txt` the driver script captures. This is
/// the perf-trajectory record: CI's bench-smoke job uploads `results/`, so
/// every run leaves a parseable snapshot next to the table.
///
/// Errors are reported on stderr but never fail the benchmark — a missing
/// `results/` directory on an ad-hoc machine must not kill a run.
pub fn write_results_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json + "\n") {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("failed to serialise {name} results: {e}"),
    }
}

/// Writes an observability snapshot to `results/metrics_<name>.json` (the
/// per-run health artifact CI's bench-smoke job uploads) and returns it
/// re-parsed as a [`serde_json::Value`] so callers can also merge it into
/// their main results blob. Follows the same never-fail policy as
/// [`write_results_json`]; the returned value is `Null` when the snapshot
/// JSON fails to parse (it shouldn't — the exporter emits strict JSON).
pub fn write_metrics_json(name: &str, snapshot: &bba_obs::MetricsSnapshot) -> serde_json::Value {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create results/: {e}");
    } else {
        let path = dir.join(format!("metrics_{name}.json"));
        match snapshot.write_json(&path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
    serde_json::from_str(&snapshot.to_json()).unwrap_or(serde_json::Value::Null)
}

/// Recursively searches a JSON value for a map that binds the same key
/// twice, returning the path of the first offender (e.g.
/// `phases[2].median_1thr_ms`) or `None` when every map is well-formed.
///
/// The vendored `serde_json` represents objects as ordered `(key, value)`
/// pairs and will happily serialise duplicates — which is how
/// `timing_breakdown` once emitted two `median_1thr_ms` fields per phase on
/// a single-thread host. Result writers (and the results-schema test) use
/// this to reject such records.
pub fn duplicate_key_path(value: &serde_json::Value) -> Option<String> {
    use serde_json::Value;
    fn walk(v: &Value, path: &str) -> Option<String> {
        match v {
            Value::Map(entries) => {
                let mut seen = std::collections::HashSet::new();
                for (k, _) in entries {
                    if !seen.insert(k.as_str()) {
                        return Some(if path.is_empty() {
                            k.clone()
                        } else {
                            format!("{path}.{k}")
                        });
                    }
                }
                for (k, child) in entries {
                    let child_path =
                        if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                    if let Some(found) = walk(child, &child_path) {
                        return Some(found);
                    }
                }
                None
            }
            Value::Seq(items) => {
                items.iter().enumerate().find_map(|(i, child)| walk(child, &format!("{path}[{i}]")))
            }
            _ => None,
        }
    }
    walk(value, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["wide-cell".into(), "x".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        // Second column starts at the same offset in header and body.
        let h = lines[0].find("long-header").unwrap();
        let b = lines[2].find('x').unwrap();
        assert_eq!(h, b);
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8), "80.0%");
        assert_eq!(opt(Some(1.23456), 2), "1.23");
        assert_eq!(opt(None, 2), "-");
    }

    #[test]
    fn duplicate_keys_are_detected_with_their_path() {
        use serde_json::Value;
        let clean = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Seq(vec![Value::Map(vec![
                    ("x".into(), Value::UInt(1)),
                    ("y".into(), Value::UInt(2)),
                ])]),
            ),
        ]);
        assert_eq!(duplicate_key_path(&clean), None);

        // The exact shape of the old timing_breakdown bug: a phase record
        // binding median_1thr_ms twice.
        let buggy = Value::Map(vec![(
            "phases".into(),
            Value::Seq(vec![
                Value::Map(vec![("label".into(), Value::Str("ok".into()))]),
                Value::Map(vec![
                    ("label".into(), Value::Str("ransac".into())),
                    ("median_1thr_ms".into(), Value::Float(324.0)),
                    ("median_1thr_ms".into(), Value::Float(323.9)),
                ]),
            ]),
        )]);
        assert_eq!(duplicate_key_path(&buggy).as_deref(), Some("phases[1].median_1thr_ms"));

        // Duplicates at the root are reported without a leading dot.
        let root = Value::Map(vec![("k".into(), Value::Null), ("k".into(), Value::Null)]);
        assert_eq!(duplicate_key_path(&root).as_deref(), Some("k"));
    }
}

//! Experiment harness for the BB-Align reproduction.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the index); this
//! library holds their shared machinery:
//!
//! * [`harness`] — the frame-pair pool driver: generates scenarios, runs
//!   BB-Align (both stages) and the VIPS baseline on every pair, and
//!   collects one [`harness::PairRecord`] per pair.
//! * [`stats`] — percentiles, CDFs and bucketing.
//! * [`report`] — aligned text tables matching the paper's presentation.
//! * [`cli`] — a tiny `--frames/--seed` argument parser so every binary
//!   scales from a smoke run to a full reproduction.
//!
//! # Example
//!
//! ```no_run
//! use bba_bench::harness::{run_pool, PoolConfig};
//!
//! let mut cfg = PoolConfig::default();
//! cfg.frames = 24;
//! let records = run_pool(&cfg);
//! let ok = records.iter().filter(|r| r.bb.is_some()).count();
//! println!("{ok}/{} recoveries", records.len());
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod report;
pub mod stats;

//! Minimal command-line parsing shared by all experiment binaries.
//!
//! Each binary accepts:
//!
//! * `--frames N` — number of frame pairs to evaluate (default varies per
//!   experiment; larger = smoother curves, linear runtime).
//! * `--seed S` — master random seed (default 2024).
//! * `--help` — prints usage and exits.

/// Parsed common options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Number of frame pairs to evaluate.
    pub frames: usize,
    /// Master seed.
    pub seed: u64,
    /// Optional path to dump raw per-pair records as JSON (for plotting).
    pub json: Option<std::path::PathBuf>,
}

/// Parses `std::env::args`, with per-experiment defaults.
///
/// Exits the process with usage text on `--help` or malformed input.
pub fn parse(default_frames: usize, description: &str) -> Options {
    parse_from(std::env::args().skip(1), default_frames, description).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(if msg.starts_with("usage") { 0 } else { 2 });
    })
}

/// Testable core of [`parse`].
pub fn parse_from(
    args: impl IntoIterator<Item = String>,
    default_frames: usize,
    description: &str,
) -> Result<Options, String> {
    let usage = format!(
        "usage: {description}\n  --frames N   frame pairs to evaluate (default {default_frames})\n  --seed S     master random seed (default 2024)\n  --json PATH  dump raw per-pair records as JSON"
    );
    let mut opts = Options { frames: default_frames, seed: 2024, json: None };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--frames" => {
                let v = it.next().ok_or_else(|| "--frames needs a value".to_string())?;
                opts.frames = v.parse().map_err(|_| format!("invalid --frames value: {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| "--seed needs a value".to_string())?;
                opts.seed = v.parse().map_err(|_| format!("invalid --seed value: {v}"))?;
            }
            "--json" => {
                let v = it.next().ok_or_else(|| "--json needs a path".to_string())?;
                opts.json = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage),
            other => return Err(format!("unknown argument: {other}\n{usage}")),
        }
    }
    if opts.frames == 0 {
        return Err("--frames must be positive".into());
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_apply() {
        let o = parse_from(argv(""), 100, "test").unwrap();
        assert_eq!(o, Options { frames: 100, seed: 2024, json: None });
    }

    #[test]
    fn overrides_parse() {
        let o = parse_from(argv("--frames 7 --seed 42"), 100, "test").unwrap();
        assert_eq!(o, Options { frames: 7, seed: 42, json: None });
        let o = parse_from(argv("--json out.json"), 100, "test").unwrap();
        assert_eq!(o.json, Some(std::path::PathBuf::from("out.json")));
    }

    #[test]
    fn help_returns_usage() {
        let e = parse_from(argv("--help"), 100, "test").unwrap_err();
        assert!(e.starts_with("usage"));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse_from(argv("--bogus"), 100, "t").is_err());
        assert!(parse_from(argv("--frames abc"), 100, "t").is_err());
        assert!(parse_from(argv("--frames 0"), 100, "t").is_err());
        assert!(parse_from(argv("--frames"), 100, "t").is_err());
    }
}

//! Minimal command-line parsing shared by all experiment binaries.
//!
//! Each binary accepts:
//!
//! * `--frames N` — number of frame pairs to evaluate (default varies per
//!   experiment; larger = smoother curves, linear runtime).
//! * `--seed S` — master random seed (default 2024).
//! * `--threads N` — worker-thread budget (default: `BBA_THREADS` env, else
//!   all cores). Results are bit-identical at every setting.
//! * `--bev N` — BV image side length in pixels, power of two (default:
//!   the experiment's engine config; smaller = faster smoke runs).
//! * `--help` — prints usage and exits.

/// Parsed common options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Number of frame pairs to evaluate.
    pub frames: usize,
    /// Master seed.
    pub seed: u64,
    /// Optional path to dump raw per-pair records as JSON (for plotting).
    pub json: Option<std::path::PathBuf>,
    /// Worker-thread budget override (`None` = `BBA_THREADS` env / cores).
    pub threads: Option<usize>,
    /// BV image side length override in pixels (`None` = engine default).
    pub bev: Option<usize>,
    /// Concurrent-session cap for serving experiments (`None` = experiment
    /// default sweep).
    pub pairs: Option<usize>,
}

impl Options {
    /// The effective thread budget: the `--threads` override when given,
    /// otherwise the process-wide default (`BBA_THREADS` env, else cores).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(bba_par::default_threads)
    }
}

/// Parses `std::env::args`, with per-experiment defaults.
///
/// Exits the process with usage text on `--help` or malformed input.
pub fn parse(default_frames: usize, description: &str) -> Options {
    parse_from(std::env::args().skip(1), default_frames, description).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(if msg.starts_with("usage") { 0 } else { 2 });
    })
}

/// Testable core of [`parse`].
pub fn parse_from(
    args: impl IntoIterator<Item = String>,
    default_frames: usize,
    description: &str,
) -> Result<Options, String> {
    let usage = format!(
        "usage: {description}\n  --frames N   frame pairs to evaluate (default {default_frames})\n  --seed S     master random seed (default 2024)\n  --threads N  worker-thread budget (default: BBA_THREADS env, else cores)\n  --bev N      BV image side length in pixels, power of two\n  --pairs N    cap concurrent pairwise sessions (serving experiments)\n  --json PATH  dump raw per-pair records as JSON"
    );
    let mut opts = Options {
        frames: default_frames,
        seed: 2024,
        json: None,
        threads: None,
        bev: None,
        pairs: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--frames" => {
                let v = it.next().ok_or_else(|| "--frames needs a value".to_string())?;
                opts.frames = v.parse().map_err(|_| format!("invalid --frames value: {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| "--seed needs a value".to_string())?;
                opts.seed = v.parse().map_err(|_| format!("invalid --seed value: {v}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or_else(|| "--threads needs a value".to_string())?;
                opts.threads =
                    Some(v.parse().map_err(|_| format!("invalid --threads value: {v}"))?);
            }
            "--bev" => {
                let v = it.next().ok_or_else(|| "--bev needs a value".to_string())?;
                opts.bev = Some(v.parse().map_err(|_| format!("invalid --bev value: {v}"))?);
            }
            "--pairs" => {
                let v = it.next().ok_or_else(|| "--pairs needs a value".to_string())?;
                opts.pairs = Some(v.parse().map_err(|_| format!("invalid --pairs value: {v}"))?);
            }
            "--json" => {
                let v = it.next().ok_or_else(|| "--json needs a path".to_string())?;
                opts.json = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage),
            other => return Err(format!("unknown argument: {other}\n{usage}")),
        }
    }
    if opts.frames == 0 {
        return Err("--frames must be positive".into());
    }
    if opts.threads == Some(0) {
        return Err("--threads must be positive".into());
    }
    if let Some(n) = opts.bev {
        if !n.is_power_of_two() {
            return Err(format!("--bev must be a power of two, got {n}"));
        }
    }
    if opts.pairs == Some(0) {
        return Err("--pairs must be positive".into());
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_apply() {
        let o = parse_from(argv(""), 100, "test").unwrap();
        assert_eq!(
            o,
            Options { frames: 100, seed: 2024, json: None, threads: None, bev: None, pairs: None }
        );
        assert!(o.threads() >= 1);
    }

    #[test]
    fn overrides_parse() {
        let o = parse_from(argv("--frames 7 --seed 42"), 100, "test").unwrap();
        assert_eq!(o.frames, 7);
        assert_eq!(o.seed, 42);
        let o = parse_from(argv("--json out.json"), 100, "test").unwrap();
        assert_eq!(o.json, Some(std::path::PathBuf::from("out.json")));
        let o = parse_from(argv("--threads 4 --bev 128"), 100, "test").unwrap();
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.threads(), 4);
        assert_eq!(o.bev, Some(128));
        let o = parse_from(argv("--pairs 32"), 100, "test").unwrap();
        assert_eq!(o.pairs, Some(32));
    }

    #[test]
    fn help_returns_usage() {
        let e = parse_from(argv("--help"), 100, "test").unwrap_err();
        assert!(e.starts_with("usage"));
        assert!(e.contains("--threads"));
        assert!(e.contains("--bev"));
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse_from(argv("--bogus"), 100, "t").is_err());
        assert!(parse_from(argv("--frames abc"), 100, "t").is_err());
        assert!(parse_from(argv("--frames 0"), 100, "t").is_err());
        assert!(parse_from(argv("--frames"), 100, "t").is_err());
        assert!(parse_from(argv("--threads 0"), 100, "t").is_err());
        assert!(parse_from(argv("--threads x"), 100, "t").is_err());
        assert!(parse_from(argv("--bev 100"), 100, "t").is_err());
        assert!(parse_from(argv("--bev"), 100, "t").is_err());
        assert!(parse_from(argv("--pairs 0"), 100, "t").is_err());
        assert!(parse_from(argv("--pairs x"), 100, "t").is_err());
    }
}

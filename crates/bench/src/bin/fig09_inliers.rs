//! **Figure 9** — Pose recovery accuracy w.r.t. number of RANSAC inliers.
//!
//! Reproduces the error CDFs bucketed by `Inliers_bv` (stage 1) and
//! `Inliers_box` (stage 2). Paper shape: accuracy improves monotonically
//! with inliers; high-inlier recoveries are almost always < 1 m / 1°,
//! which justifies using inlier counts as the success signal.
//!
//! Bucket boundaries are scaled to this reproduction's keypoint budget
//! (the paper's absolute counts assume its denser raster): the *ordering*
//! of the buckets, not the absolute thresholds, carries the claim.

use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig, RecoveryStats};
use bba_bench::report::{banner, pct, print_table};
use bba_bench::stats::fraction_below;

fn main() {
    let opts = cli::parse(90, "fig09_inliers — error CDFs bucketed by inlier counts");
    banner(
        "Figure 9: accuracy vs RANSAC inlier counts",
        &format!("{} frame pairs over mixed scenarios", opts.frames),
    );

    let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
    cfg.run_vips = false;
    let records = run_pool(&cfg);
    bba_bench::harness::maybe_dump_json(&records, &opts);
    let stats: Vec<&RecoveryStats> = records.iter().filter_map(|r| r.bb.as_ref()).collect();

    // (a) Bucket by Inliers_bv.
    let bv_buckets: [(&str, std::ops::Range<usize>); 3] =
        [("<= 25", 0..26), ("26-40", 26..41), ("> 40", 41..usize::MAX)];
    print_bucketed("(a) by Inliers_bv", &stats, &bv_buckets, |s| s.inliers_bv);

    // (b) Bucket by Inliers_box.
    let box_buckets: [(&str, std::ops::Range<usize>); 3] =
        [("<= 6", 0..7), ("7-12", 7..13), ("> 12", 13..usize::MAX)];
    print_bucketed("(b) by Inliers_box", &stats, &box_buckets, |s| s.inliers_box);

    println!(
        "\npaper reference: higher inlier counts => tighter CDFs; above the upper buckets\n\
         >90% of recoveries are within 1 m and 1°."
    );
}

fn print_bucketed(
    title: &str,
    stats: &[&RecoveryStats],
    buckets: &[(&str, std::ops::Range<usize>)],
    key: impl Fn(&RecoveryStats) -> usize,
) {
    println!("{title}");
    let mut rows = vec![vec![
        "bucket".to_string(),
        "n".to_string(),
        "<0.5 m".to_string(),
        "<1 m".to_string(),
        "<2 m".to_string(),
        "<1°".to_string(),
        "<2°".to_string(),
    ]];
    for (label, range) in buckets {
        let sel: Vec<&&RecoveryStats> = stats.iter().filter(|s| range.contains(&key(s))).collect();
        let dts: Vec<f64> = sel.iter().map(|s| s.dt).collect();
        let drs: Vec<f64> = sel.iter().map(|s| s.dr.to_degrees()).collect();
        rows.push(vec![
            label.to_string(),
            sel.len().to_string(),
            pct(fraction_below(&dts, 0.5)),
            pct(fraction_below(&dts, 1.0)),
            pct(fraction_below(&dts, 2.0)),
            pct(fraction_below(&drs, 1.0)),
            pct(fraction_below(&drs, 2.0)),
        ]);
    }
    print_table(&rows);
    println!();
}

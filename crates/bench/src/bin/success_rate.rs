//! **§V-A success rate** — fraction of frame pairs with a successful
//! recovery under the inlier criterion `Inliers_bv > 25 ∧ Inliers_box > 6`.
//!
//! Paper reference: 80 % of selected pairs (4,915 of 6,145) recover
//! successfully; failures concentrate in feature-poor open areas.

use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig};
use bba_bench::report::{banner, pct, print_table};
use bba_scene::ScenarioPreset;

fn main() {
    let opts = cli::parse(96, "success_rate — recovery success under the inlier criterion");
    banner(
        "Success rate (§V-A)",
        &format!("{} frame pairs incl. feature-poor open-rural scenes", opts.frames),
    );

    // The mix deliberately includes OpenRural, the paper's failure regime.
    let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
    cfg.run_vips = false;
    cfg.presets = vec![
        ScenarioPreset::Urban,
        ScenarioPreset::Suburban,
        ScenarioPreset::Highway,
        ScenarioPreset::OpenRural,
    ];
    let records = run_pool(&cfg);
    bba_bench::harness::maybe_dump_json(&records, &opts);

    let mut rows = vec![vec!["outcome".to_string(), "pairs".to_string(), "fraction".to_string()]];
    let total = records.len();
    let stage1_failed = records.iter().filter(|r| r.bb.is_none()).count();
    let solved_weak = records.iter().filter(|r| r.bb.as_ref().is_some_and(|b| !b.success)).count();
    let success = records.iter().filter(|r| r.bb.as_ref().is_some_and(|b| b.success)).count();
    rows.push(vec![
        "successful (criterion met)".into(),
        success.to_string(),
        pct(success as f64 / total as f64),
    ]);
    rows.push(vec![
        "recovered but low-confidence".into(),
        solved_weak.to_string(),
        pct(solved_weak as f64 / total as f64),
    ]);
    rows.push(vec![
        "stage-1 failure (no consensus)".into(),
        stage1_failed.to_string(),
        pct(stage1_failed as f64 / total as f64),
    ]);
    print_table(&rows);

    // Success rate among *selected* pairs (≥2 common cars), the paper's
    // denominator.
    let selected: Vec<_> = records.iter().filter(|r| r.common_cars >= 2).collect();
    let sel_success = selected.iter().filter(|r| r.bb.as_ref().is_some_and(|b| b.success)).count();
    println!(
        "\nselected pairs (≥2 common cars): {} of {}; success among selected: {}",
        selected.len(),
        total,
        pct(sel_success as f64 / selected.len().max(1) as f64),
    );
    println!("paper reference: 80% success on selected pairs; failures in open areas.");
}

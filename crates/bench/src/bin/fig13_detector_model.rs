//! **Figure 13** — Impact of the object-detection model on box alignment.
//!
//! Reproduces the comparison between a coBEVT-profile and an
//! F-Cooper-profile detector feeding stage 2. Paper claim: "the choice of
//! model plays a minor role" — BB-Align is detector-agnostic.

use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig};
use bba_bench::report::{banner, pct, print_table};
use bba_bench::stats::{fraction_below, percentile};
use bba_detect::DetectorModel;

fn main() {
    let opts = cli::parse(72, "fig13_detector_model — coBEVT vs F-Cooper detector profiles");
    banner(
        "Figure 13: pose recovery accuracy per detection model",
        &format!("{} frame pairs per model over mixed scenarios", opts.frames),
    );

    let mut rows = vec![vec![
        "detector".to_string(),
        "solved".to_string(),
        "median dt (m)".to_string(),
        "trans <1 m".to_string(),
        "rot <1°".to_string(),
    ]];
    let mut medians = Vec::new();
    for model in [DetectorModel::CoBevt, DetectorModel::FCooper] {
        let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
        cfg.run_vips = false;
        cfg.dataset.detector = model;
        let records = run_pool(&cfg);
        bba_bench::harness::maybe_dump_json(&records, &opts);
        let dts: Vec<f64> = records
            .iter()
            .filter_map(|r| r.bb.as_ref().filter(|b| b.success).map(|b| b.dt))
            .collect();
        let drs: Vec<f64> = records
            .iter()
            .filter_map(|r| r.bb.as_ref().filter(|b| b.success).map(|b| b.dr.to_degrees()))
            .collect();
        let med = percentile(&dts, 50.0).unwrap_or(f64::NAN);
        medians.push(med);
        rows.push(vec![
            format!("{model:?}"),
            dts.len().to_string(),
            format!("{med:.2}"),
            pct(fraction_below(&dts, 1.0)),
            pct(fraction_below(&drs, 1.0)),
        ]);
    }
    print_table(&rows);

    println!(
        "\npaper reference: the two detectors produce nearly identical recovery accuracy\n\
         (model choice plays a minor role)."
    );
    println!(
        "measured: median translation error {:.2} m (coBEVT) vs {:.2} m (F-Cooper)",
        medians[0], medians[1]
    );
}

//! **Table I** — Cooperative object detection under corrupted pose, with
//! and without BB-Align pose recovery.
//!
//! For every fusion method (early / late / F-Cooper / coBEVT), every frame
//! pair is fused twice: once with the corrupted pose (`σ_t = 2 m`,
//! `σ_θ = 2°` Gaussian noise, the paper's protocol) and once with the pose
//! recovered by BB-Align from the shared BV image + boxes (falling back to
//! the corrupted pose when recovery fails, as a deployed system would).
//! AP@IoU 0.5/0.7 is reported over the paper's range bands.
//!
//! Paper shape: corruption caps every method below 35.0/20.0; recovery
//! roughly doubles early/late-fusion AP@0.5 and lifts all methods, most at
//! close range (0–30 m AP@0.5 above 60).

use bb_align::{BbAlign, BbAlignConfig};
use bba_bench::cli;
use bba_bench::harness::frames_of;
use bba_bench::report::{banner, print_table};
use bba_dataset::{Dataset, DatasetConfig, FramePair, PoseNoise};
use bba_detect::{evaluate_detections, Detection, GroundTruthBox, RangeBand};
use bba_fusion::{FusionExperiment, FusionMethod};
use bba_geometry::Iso2;
use bba_scene::{ScenarioConfig, ScenarioPreset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = cli::parse(48, "table1_detection_ap — cooperative detection AP under pose error");
    banner(
        "Table I: AP@IoU 0.5/0.7 with corrupted vs recovered pose",
        &format!("{} frame pairs, σ_t = 2 m, σ_θ = 2°", opts.frames),
    );

    // Generate the shared pool of frame pairs with both poses.
    let aligner = BbAlign::new(BbAlignConfig::default());
    let noise = PoseNoise::table1();
    let mut pool: Vec<(FramePair, Iso2, Iso2)> = Vec::new(); // (pair, corrupted, recovered)
    let presets = [ScenarioPreset::Urban, ScenarioPreset::Suburban];
    let per_scenario = 4usize;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut recovered_ok = 0usize;

    let n_scenarios = opts.frames.div_ceil(per_scenario);
    for s in 0..n_scenarios {
        let mut dcfg = DatasetConfig::standard();
        dcfg.scenario = ScenarioConfig::preset(presets[s % presets.len()]);
        let mut ds = Dataset::new(dcfg, opts.seed.wrapping_add(s as u64 * 104729));
        for _ in 0..per_scenario {
            if pool.len() >= opts.frames {
                break;
            }
            let pair = ds.next_pair().unwrap();
            let corrupted = noise.corrupt(&pair.true_relative, &mut rng);
            let (ego, other) = frames_of(&aligner, &pair);
            let recovered = match aligner.recover(&ego, &other, &mut rng) {
                Ok(r) => {
                    recovered_ok += 1;
                    r.transform
                }
                Err(_) => corrupted, // recovery unavailable: keep GPS pose
            };
            pool.push((pair, corrupted, recovered));
            if pool.len().is_multiple_of(8) {
                eprintln!("  [{}/{} pairs prepared]", pool.len(), opts.frames);
            }
        }
    }
    println!("pose recovery succeeded on {recovered_ok}/{} pairs\n", pool.len());

    // Evaluate every method under both poses.
    let bands = RangeBand::table1_bands();
    let mut rows = vec![{
        let mut h = vec!["Method".to_string(), "Pose".to_string()];
        h.extend(bands.iter().map(|(n, _)| n.to_string()));
        h
    }];
    for method in FusionMethod::ALL {
        let exp = FusionExperiment::new(method);
        for (pose_label, pick) in [
            ("σt=2m,σθ=2°", 1usize), // corrupted
            ("Recovered", 2usize),
        ] {
            let mut eval_rng = StdRng::seed_from_u64(opts.seed ^ 0xABCD);
            let frames: Vec<(Vec<Detection>, Vec<GroundTruthBox>)> = pool
                .iter()
                .map(|(pair, corrupted, recovered)| {
                    let pose = if pick == 1 { corrupted } else { recovered };
                    exp.run_frame(pair, pose, &mut eval_rng)
                })
                .collect();
            let mut row = vec![method.name().to_string(), pose_label.to_string()];
            for (_, band) in &bands {
                let ap50 = evaluate_detections(&frames, 0.5, *band).ap;
                let ap70 = evaluate_detections(&frames, 0.7, *band).ap;
                row.push(format!("{:.1}/{:.1}", 100.0 * ap50, 100.0 * ap70));
            }
            rows.push(row);
        }
    }
    print_table(&rows);

    println!(
        "\npaper reference (shape): corrupted pose caps all methods below 35/20 overall;\n\
         recovery roughly doubles early/late AP@0.5 and helps most at 0-30 m\n\
         (all methods above 60 AP@0.5 there); long range gains are modest."
    );
}

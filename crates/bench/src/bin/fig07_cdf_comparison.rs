//! **Figure 7** — Pose recovery accuracy comparison (BB-Align vs VIPS).
//!
//! Reproduces the CDFs of translation and rotation error over a mixed pool
//! of scenarios. Paper reference points: ≈60 % of BB-Align estimates under
//! 1 m translation error vs ≈30 % for graph matching; rotation errors
//! comparable between methods.

use bba_bench::cli;
use bba_bench::harness::{
    bb_rotation_errors_deg, bb_translation_errors, run_pool, vips_rotation_errors_deg,
    vips_translation_errors, PoolConfig,
};
use bba_bench::report::{banner, pct, print_table};
use bba_bench::stats::fraction_below;

fn main() {
    let opts = cli::parse(90, "fig07_cdf_comparison — error CDFs, BB-Align vs VIPS");
    banner(
        "Figure 7: pose recovery accuracy comparison",
        &format!("{} frame pairs over mixed urban/suburban/highway scenarios", opts.frames),
    );

    let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
    // Real V2V drives span sparse to dense traffic; the overall CDF
    // comparison must include the light-traffic regime where graph
    // matching struggles (paper §II / Fig. 8).
    cfg.traffic_counts = vec![1, 2, 3, 5, 8, 12];
    let records = run_pool(&cfg);
    bba_bench::harness::maybe_dump_json(&records, &opts);

    // CDFs are computed over ALL attempted pairs: a failed recovery is an
    // infinite error, so solve-rate differences show up in the curves
    // instead of being hidden by conditioning on success.
    let pad = |mut v: Vec<f64>, n: usize| {
        v.resize(n, f64::INFINITY);
        v
    };
    let n = records.len();
    let bb_t = pad(bb_translation_errors(&records), n);
    let bb_r = pad(bb_rotation_errors_deg(&records), n);
    let vips_t = pad(vips_translation_errors(&records), n);
    let vips_r = pad(vips_rotation_errors_deg(&records), n);

    println!(
        "attempted pairs: {}; BB-Align solved {}, VIPS solved {}\n",
        n,
        bb_t.iter().filter(|x| x.is_finite()).count(),
        vips_t.iter().filter(|x| x.is_finite()).count()
    );

    let thresholds = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0];
    let mut rows =
        vec![vec!["translation err <".to_string(), "BB-Align".to_string(), "VIPS".to_string()]];
    for &t in &thresholds {
        rows.push(vec![
            format!("{t} m"),
            pct(fraction_below(&bb_t, t)),
            pct(fraction_below(&vips_t, t)),
        ]);
    }
    print_table(&rows);
    println!();

    let rot_thresholds = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0];
    let mut rows =
        vec![vec!["rotation err <".to_string(), "BB-Align".to_string(), "VIPS".to_string()]];
    for &t in &rot_thresholds {
        rows.push(vec![
            format!("{t}°"),
            pct(fraction_below(&bb_r, t)),
            pct(fraction_below(&vips_r, t)),
        ]);
    }
    print_table(&rows);

    println!(
        "\npaper reference: BB-Align ~60% < 1 m translation vs ~30% for graph matching;\n\
         rotation CDFs comparable between methods."
    );
    println!(
        "measured:        BB-Align {} < 1 m vs VIPS {}; rotation < 1°: BB-Align {} vs VIPS {}",
        pct(fraction_below(&bb_t, 1.0)),
        pct(fraction_below(&vips_t, 1.0)),
        pct(fraction_below(&bb_r, 1.0)),
        pct(fraction_below(&vips_r, 1.0)),
    );
}

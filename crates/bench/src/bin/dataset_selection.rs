//! **§V dataset selection** — fraction of frames where both cars commonly
//! observe at least two vehicles.
//!
//! The paper keeps 12K of 20K V2V4Real frames (60 %) under this predicate,
//! noting that excluded frames come from distance, occlusion, or divergent
//! headings. This binary measures the same statistic over the synthetic
//! scenario mix, broken down by preset and separation.

use bba_bench::cli;
use bba_bench::report::{banner, pct, print_table};
use bba_dataset::{Dataset, DatasetConfig};
use bba_scene::{ScenarioConfig, ScenarioPreset};

fn main() {
    let opts = cli::parse(120, "dataset_selection — §V frame-selection statistics");
    banner(
        "Dataset selection (§V): frames with ≥2 commonly observed cars",
        &format!("{} frames across presets and separations", opts.frames),
    );

    let presets = [
        ScenarioPreset::Urban,
        ScenarioPreset::Suburban,
        ScenarioPreset::Highway,
        ScenarioPreset::OpenRural,
        ScenarioPreset::ParkingLot,
    ];
    let separations = [25.0, 40.0, 60.0, 80.0];
    let per_cell = (opts.frames / (presets.len() * separations.len())).max(1);

    let mut rows = vec![{
        let mut h = vec!["preset".to_string()];
        h.extend(separations.iter().map(|s| format!("{s:.0} m")));
        h.push("preset total".into());
        h
    }];
    let mut grand_selected = 0usize;
    let mut grand_total = 0usize;

    for (pi, preset) in presets.iter().enumerate() {
        let mut row = vec![format!("{preset:?}")];
        let mut preset_selected = 0usize;
        let mut preset_total = 0usize;
        for (si, sep) in separations.iter().enumerate() {
            let mut selected = 0usize;
            for k in 0..per_cell {
                let mut dcfg = DatasetConfig::standard();
                dcfg.scenario = ScenarioConfig::preset(*preset).with_separation(*sep);
                let seed = opts.seed.wrapping_add((pi * 1009 + si * 101 + k) as u64 * 37);
                let mut ds = Dataset::new(dcfg, seed);
                if ds.next_pair().unwrap().is_selected() {
                    selected += 1;
                }
            }
            preset_selected += selected;
            preset_total += per_cell;
            row.push(pct(selected as f64 / per_cell as f64));
        }
        grand_selected += preset_selected;
        grand_total += preset_total;
        row.push(pct(preset_selected as f64 / preset_total as f64));
        rows.push(row);
    }
    print_table(&rows);

    println!(
        "\noverall selection rate: {} ({grand_selected}/{grand_total})",
        pct(grand_selected as f64 / grand_total.max(1) as f64)
    );
    println!(
        "paper reference: 12K of 20K frames (60%) selected; exclusions driven by\n\
         distance, occlusion and sparse surroundings — the same gradients visible\n\
         across the separation columns and the open-rural row here."
    );
}

//! **Extension experiment** — steady-state cost of tracking-gated warm
//! starts.
//!
//! The cold pipeline prices a *first contact*: MIM, keypoints,
//! descriptors, a 24-hypothesis sweep, RANSAC. But a fleet runs pose
//! recovery *continuously* at sensor rate, and consecutive frames of the
//! same pair are nearly redundant. This experiment measures what
//! continuous operation actually costs once the per-pair tracker is
//! allowed to skip stage 1: 10 Hz frame sequences with real relative
//! motion stream through a [`bba_serve::PoseService`] with
//! `warm_start` on, and we report the amortized per-frame cost, the
//! warm-hit rate, and warm-vs-cold latency medians per sweep point.
//!
//! Artifacts: `results/steady_state.txt` (the table below),
//! `results/steady_state.json` (sweep summary) and
//! `results/metrics_steady_state.json` (shared engine + service
//! recorder: `warmstart.*` counters, `serve.recovery_{warm,cold}_ms`
//! histograms). One recorder spans the engine and every service in the
//! sweep, so the ledger `warmstart.hit + warmstart.miss ==
//! serve.processed` holds over the whole artifact — CI asserts it.

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame, RecoveryPath};
use bba_bench::cli;
use bba_bench::report::{banner, opt, pct, render_table, write_metrics_json, write_results_json};
use bba_bench::stats::percentile;
use bba_dataset::{Dataset, DatasetConfig};
use bba_obs::Recorder;
use bba_serve::{FrameSubmission, PairId, PoseService, ServiceConfig, SessionConfig};
use std::sync::Arc;
use std::time::Instant;

/// Steady-state frame interval (s): 10 Hz, the rate the paper's
/// continuous-operation pitch implies.
const FRAME_INTERVAL: f64 = 0.1;

/// The link-harness fast engine: 128² BV raster (unless `--bev`
/// overrides), reduced descriptor patch, lowered stage-1 threshold.
fn engine_config(bev_override: Option<usize>) -> BbAlignConfig {
    let mut cfg = BbAlignConfig::default();
    let size = bev_override.unwrap_or(128);
    cfg.bev.range = 102.4;
    cfg.bev.resolution = 2.0 * cfg.bev.range / size as f64;
    cfg.min_inliers_bv = 10;
    cfg.descriptor.patch_size = 24.min(size / 4);
    cfg.descriptor.grid_size = 4;
    cfg
}

/// One pair's pre-built 10 Hz sequence (frame construction priced out of
/// the timed loop: this experiment measures recovery, not rasterisation).
struct PairSequence {
    pair: PairId,
    frames: Vec<(f64, Arc<PerceptionFrame>, Arc<PerceptionFrame>)>,
}

fn build_sequences(engine: &BbAlign, pairs: usize, frames: usize, seed: u64) -> Vec<PairSequence> {
    (0..pairs)
        .map(|p| {
            let cfg = DatasetConfig::test_small().at_frame_interval(FRAME_INTERVAL);
            let mut ds = Dataset::new(cfg, seed.wrapping_add(p as u64));
            let frames = (0..frames)
                .map(|_| {
                    let fp = ds.next_pair().expect("dataset streams indefinitely");
                    let build = |agent: &bba_dataset::AgentFrame| {
                        Arc::new(engine.frame_from_parts(
                            agent.scan.points().iter().map(|pt| pt.position),
                            agent.detections.iter().map(|d| (d.box3, d.confidence)),
                        ))
                    };
                    (fp.time, build(&fp.ego), build(&fp.other))
                })
                .collect();
            PairSequence { pair: PairId::new(p as u32, 100 + p as u32), frames }
        })
        .collect()
}

struct SweepRow {
    pairs: usize,
    processed: u64,
    warm_hits: u64,
    amortized_ms: f64,
    warm_p50: Option<f64>,
    cold_p50: Option<f64>,
}

impl SweepRow {
    fn hit_rate(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        self.warm_hits as f64 / self.processed as f64
    }

    fn speedup(&self) -> Option<f64> {
        let cold = self.cold_p50?;
        (self.amortized_ms > 0.0).then(|| cold / self.amortized_ms)
    }
}

fn main() {
    let opts = cli::parse(40, "steady_state — amortized cost of tracking-gated warm starts");
    if opts.json.is_some() {
        eprintln!("note: this experiment reports aggregates; --json is ignored");
    }
    let threads = opts.threads();

    let max_pairs = opts.pairs.unwrap_or(8);
    let mut sweep: Vec<usize> =
        [1usize, 4, 8].iter().copied().filter(|&p| p <= max_pairs).collect();
    if sweep.last() != Some(&max_pairs) {
        sweep.push(max_pairs);
    }

    banner(
        "Extension: steady-state warm-start cost",
        &format!(
            "{} frames per pair at 10 Hz, sweep {:?} concurrent pairs, {threads} threads",
            opts.frames, sweep
        ),
    );

    // ONE recorder across the engine and every sweep service: the
    // warmstart.{hit,miss} counters are incremented by the engine, the
    // serve.* ledger by the services, and CI checks them against each
    // other on this single artifact.
    let recorder = Recorder::enabled();
    let engine = Arc::new(BbAlign::new(engine_config(opts.bev)).with_recorder(recorder.clone()));
    let sequences = build_sequences(&engine, *sweep.last().unwrap(), opts.frames, opts.seed);

    let mut rows = vec![vec![
        "pairs".to_string(),
        "frames".to_string(),
        "warm hits".to_string(),
        "hit rate".to_string(),
        "amortized (ms/frame)".to_string(),
        "warm p50 (ms)".to_string(),
        "cold p50 (ms)".to_string(),
        "speedup vs cold".to_string(),
    ]];
    let mut sweep_rows: Vec<SweepRow> = Vec::new();

    for &pairs in &sweep {
        let service = PoseService::new(
            Arc::clone(&engine),
            ServiceConfig {
                session: SessionConfig { queue_capacity: 2, staleness: 0.5 },
                shards: 16,
                max_batch_per_session: 1,
                seed: opts.seed,
                ..Default::default()
            },
        )
        .with_recorder(recorder.clone());

        let mut warm_lat: Vec<f64> = Vec::new();
        let mut cold_lat: Vec<f64> = Vec::new();
        let mut warm_hits = 0u64;
        let started = Instant::now();
        bba_par::with_threads(threads, || {
            for round in 0..opts.frames {
                let mut now = 0.0;
                for seq in sequences.iter().take(pairs) {
                    let (time, ego, other) = &seq.frames[round];
                    now = *time;
                    service.submit(
                        seq.pair,
                        FrameSubmission {
                            seq: round as u64,
                            timestamp: *time,
                            ego: Arc::clone(ego),
                            other: Arc::clone(other),
                        },
                        *time,
                    );
                }
                for outcome in service.process_batch(now) {
                    if outcome.path == RecoveryPath::WarmStart {
                        warm_hits += 1;
                        warm_lat.push(outcome.latency_ms);
                    } else {
                        cold_lat.push(outcome.latency_ms);
                    }
                }
            }
        });
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

        let stats = service.stats();
        assert!(stats.is_conserved(), "serving ledger violated: {stats:?}");
        let processed = stats.processed;
        let row = SweepRow {
            pairs,
            processed,
            warm_hits,
            amortized_ms: elapsed_ms / processed.max(1) as f64,
            warm_p50: percentile(&warm_lat, 50.0),
            cold_p50: percentile(&cold_lat, 50.0),
        };
        rows.push(vec![
            pairs.to_string(),
            processed.to_string(),
            row.warm_hits.to_string(),
            pct(row.hit_rate()),
            format!("{:.2}", row.amortized_ms),
            opt(row.warm_p50, 2),
            opt(row.cold_p50, 2),
            row.speedup().map_or("n/a".to_string(), |s| format!("{s:.1}x")),
        ]);
        sweep_rows.push(row);
    }

    let table = render_table(&rows);
    print!("{table}");
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("failed to create results/: {e}");
    }
    if let Err(e) = std::fs::write("results/steady_state.txt", &table) {
        eprintln!("failed to write results/steady_state.txt: {e}");
    }

    // The ledger CI asserts: every frame the services processed went
    // through exactly one of the warm-start counters.
    let snapshot = recorder.snapshot();
    let hits = snapshot.counter("warmstart.hit").unwrap_or(0);
    let misses = snapshot.counter("warmstart.miss").unwrap_or(0);
    let processed = snapshot.counter("serve.processed").unwrap_or(0);
    assert_eq!(
        hits + misses,
        processed,
        "warm-start ledger violated: {hits} hits + {misses} misses != {processed} processed"
    );
    println!(
        "ledger: {hits} warm hits + {misses} misses == {processed} frames processed ({} guided fallbacks)",
        snapshot.counter("warmstart.fallback").unwrap_or(0),
    );

    use serde_json::Value;
    let float = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
    let metrics = write_metrics_json("steady_state", &snapshot);
    write_results_json(
        "steady_state",
        &Value::Map(vec![
            ("bench".into(), Value::Str("steady_state".into())),
            ("frames_per_pair".into(), Value::UInt(opts.frames as u64)),
            ("frame_interval_s".into(), Value::Float(FRAME_INTERVAL)),
            ("seed".into(), Value::UInt(opts.seed)),
            ("threads".into(), Value::UInt(threads as u64)),
            (
                "sweep".into(),
                Value::Seq(
                    sweep_rows
                        .iter()
                        .map(|r| {
                            Value::Map(vec![
                                ("pairs".into(), Value::UInt(r.pairs as u64)),
                                ("processed".into(), Value::UInt(r.processed)),
                                ("warm_hits".into(), Value::UInt(r.warm_hits)),
                                ("warm_hit_rate".into(), Value::Float(r.hit_rate())),
                                ("amortized_ms_per_frame".into(), Value::Float(r.amortized_ms)),
                                ("warm_p50_ms".into(), float(r.warm_p50)),
                                ("cold_p50_ms".into(), float(r.cold_p50)),
                                ("speedup_vs_cold".into(), float(r.speedup())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("warmstart_hits".into(), Value::UInt(hits)),
            ("warmstart_misses".into(), Value::UInt(misses)),
            (
                "warmstart_fallbacks".into(),
                Value::UInt(snapshot.counter("warmstart.fallback").unwrap_or(0)),
            ),
            ("frames_processed".into(), Value::UInt(processed)),
            ("metrics".into(), metrics),
        ]),
    );
}

//! **Figure 14** — Ablation: accuracy with and without stage-2 box
//! alignment.
//!
//! Paper shape: removing box alignment markedly increases translation
//! error (stage 2 predominantly corrects translation residuals caused by
//! self-motion distortion), while rotation is less affected.

use bb_align::BbAlignConfig;
use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig};
use bba_bench::report::{banner, opt, print_table};
use bba_bench::stats::percentile;

fn main() {
    let opts = cli::parse(72, "fig14_ablation — with vs without stage-2 box alignment");
    banner(
        "Figure 14: ablation of the second-stage box alignment",
        &format!("{} frame pairs per arm over mixed scenarios", opts.frames),
    );

    let mut rows = vec![vec![
        "pipeline".to_string(),
        "solved".to_string(),
        "dt p25/p50/p75 (m)".to_string(),
        "dr p25/p50/p75 (°)".to_string(),
    ]];
    let mut medians = Vec::new();
    for (label, with_stage2) in [("two-stage (full)", true), ("stage 1 only", false)] {
        let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
        cfg.run_vips = false;
        cfg.engine = if with_stage2 {
            BbAlignConfig::default()
        } else {
            BbAlignConfig::default().without_box_alignment()
        };
        let records = run_pool(&cfg);
        bba_bench::harness::maybe_dump_json(&records, &opts);
        // The stage-1-only arm can never meet the full success criterion
        // (it has no box inliers), so both arms are filtered on the
        // stage-1 confidence signal alone to stay comparable.
        let confident = |b: &&bba_bench::harness::RecoveryStats| b.inliers_bv > 25;
        let dts: Vec<f64> =
            records.iter().filter_map(|r| r.bb.as_ref().filter(confident).map(|b| b.dt)).collect();
        let drs: Vec<f64> = records
            .iter()
            .filter_map(|r| r.bb.as_ref().filter(confident).map(|b| b.dr.to_degrees()))
            .collect();
        medians.push((percentile(&dts, 50.0), percentile(&drs, 50.0)));
        let p3 = |v: &[f64]| {
            format!(
                "{}/{}/{}",
                opt(percentile(v, 25.0), 2),
                opt(percentile(v, 50.0), 2),
                opt(percentile(v, 75.0), 2)
            )
        };
        rows.push(vec![label.to_string(), dts.len().to_string(), p3(&dts), p3(&drs)]);
    }
    print_table(&rows);

    println!(
        "\npaper reference: excluding box alignment markedly increases translation error;\n\
         the 75th-percentile rotation error stays comparatively stable."
    );
    println!(
        "measured medians: full {} m / {}°, stage-1-only {} m / {}°",
        opt(medians[0].0, 2),
        opt(medians[0].1, 2),
        opt(medians[1].0, 2),
        opt(medians[1].1, 2),
    );
}

//! **Ablation** — rotation handling: hypothesis sweep vs fast zero-yaw
//! assumption.
//!
//! BB-Align must work "independently of prior pose information"; the
//! default sweeps 24 global rotation hypotheses. When the deployment knows
//! headings are roughly aligned (e.g. convoy following), a single
//! hypothesis suffices and is ~cheaper. This ablation quantifies the cost
//! of prior-free operation.

use bb_align::BbAlignConfig;
use bba_bench::cli;
use bba_bench::harness::compare_engines;
use bba_bench::report::banner;

fn main() {
    let opts =
        cli::parse(48, "ablation_rotation_strategy — full hypothesis sweep vs zero-yaw fast path");
    banner(
        "Ablation: rotation hypothesis sweep",
        &format!("{} frame pairs per variant (same-direction traffic)", opts.frames),
    );

    let full = BbAlignConfig::default();
    let single = BbAlignConfig { rotation_hypotheses: 1, ..BbAlignConfig::default() };

    compare_engines(
        &[("24 hypotheses (prior-free)", full), ("1 hypothesis (assume ~0 yaw)", single)],
        opts.frames,
        opts.seed,
    );

    println!(
        "\nexpected: identical accuracy on same-direction pairs (hypothesis 0 wins and\n\
         the sweep early-exits); the single-hypothesis path fails on oncoming pairs."
    );
}

//! **Figure 10** — Pose recovery accuracy w.r.t. inter-vehicle distance.
//!
//! Reproduces the error CDFs for distance bands [0, 70) m and [70, 100] m.
//! Paper reference: within 70 m, ~80 % of recoveries are under 1 m and 1°;
//! beyond 70 m translation accuracy degrades while rotation stays ~1° for
//! ~70 % of pairs.

use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig};
use bba_bench::report::{banner, pct, print_table};
use bba_bench::stats::fraction_below;

fn main() {
    let opts = cli::parse(108, "fig10_distance — error CDFs by distance band");
    banner(
        "Figure 10: accuracy vs inter-vehicle distance",
        &format!("{} frame pairs, separations swept 15..95 m", opts.frames),
    );

    let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
    cfg.run_vips = false;
    cfg.separations = vec![15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0, 95.0];
    let records = run_pool(&cfg);
    bba_bench::harness::maybe_dump_json(&records, &opts);

    let bands: [(&str, std::ops::Range<f64>); 2] =
        [("[0, 70) m", 0.0..70.0), ("[70, 100] m", 70.0..100.5)];

    let mut rows = vec![vec![
        "distance band".to_string(),
        "pairs".to_string(),
        "solved".to_string(),
        "trans <1 m".to_string(),
        "trans <2 m".to_string(),
        "rot <1°".to_string(),
        "rot <2°".to_string(),
    ]];
    for (label, range) in &bands {
        let in_band: Vec<_> = records.iter().filter(|r| range.contains(&r.distance)).collect();
        // Per §V-A, accuracy analysis is restricted to successful
        // recoveries (the success-rate binary quantifies the rest).
        let dts: Vec<f64> = in_band
            .iter()
            .filter_map(|r| r.bb.as_ref().filter(|b| b.success).map(|b| b.dt))
            .collect();
        let drs: Vec<f64> = in_band
            .iter()
            .filter_map(|r| r.bb.as_ref().filter(|b| b.success).map(|b| b.dr.to_degrees()))
            .collect();
        rows.push(vec![
            label.to_string(),
            in_band.len().to_string(),
            dts.len().to_string(),
            pct(fraction_below(&dts, 1.0)),
            pct(fraction_below(&dts, 2.0)),
            pct(fraction_below(&drs, 1.0)),
            pct(fraction_below(&drs, 2.0)),
        ]);
    }
    print_table(&rows);

    println!(
        "\npaper reference: [0,70) m -> ~80% under 1 m & 1°; beyond 70 m translation\n\
         degrades while ~70% stay under ~1° rotation."
    );
}

//! **Extension experiment** — global place recognition quality and cost.
//!
//! BB-Align's fleet story needs a cheap answer to "which pairs are even
//! worth recovering?" before any pairwise work is queued. This experiment
//! measures the `bba-place` descriptor end to end on clustered suburbia
//! fleets where ground-truth BEV overlap is known by construction
//! ([`bba_scene::FleetScenario::bev_overlap_fraction`]): cars within a
//! cluster see
//! the same scene, cars across clusters are guaranteed disjoint at the
//! sensing radius.
//!
//! Per scenario seed we score every vehicle pair by descriptor cosine
//! similarity, label it by true disc overlap, and report the ROC
//! (pooled curve + per-seed AUC). The fleet [`PlaceIndex`] is then
//! exercised under repeated top-k queries for p50/p99 latency via the
//! `place.query` span histogram, and a gated [`PoseService`] pass shows
//! the descriptors doing their production job: refusing disjoint pairs
//! (`serve.shed_gated`) while conserving every submission.
//!
//! Artifacts: `results/place_recognition.json` (ROC, AUC per seed,
//! query quantiles, gating ledger) and
//! `results/metrics_place_recognition.json` (`place.*` / `serve.*`
//! counters and histograms).

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame};
use bba_bench::cli;
use bba_bench::report::{banner, opt, print_table, write_metrics_json, write_results_json};
use bba_dataset::{FleetDataset, FleetDatasetConfig};
use bba_obs::Recorder;
use bba_place::{PlaceConfig, PlaceDescriptor, PlaceIndex};
use bba_scene::{FleetConfig, ScenarioConfig, ScenarioPreset};
use bba_serve::{AdmitOutcome, FrameSubmission, GateConfig, PairId, PoseService, ServiceConfig};
use std::sync::Arc;

/// Scenario seeds swept (base seed, base+1, ...).
const SEEDS: usize = 5;
/// Agent vehicles per fleet: the base pair plus two clusters of three.
const VEHICLES: usize = 8;
/// Cars per cluster.
const CLUSTER_SIZE: usize = 3;
/// Arc distance (m) between cluster anchors. With the 51.2 m sensing
/// radius below, clusters sit far beyond 2R of each other and of the
/// base pair, so cross-cluster overlap is exactly zero.
const CLUSTER_GAP: f64 = 160.0;
/// In-cluster slot spacing (m): well inside 2R, heavy mutual overlap.
/// Ten metres matches the usual place-recognition notion of "the same
/// place" (revisits within a few car lengths).
const IN_CLUSTER_SPACING: f64 = 10.0;
/// BEV sensing radius (m) — both the engine's raster range and the
/// radius the ground-truth disc overlap is evaluated at.
const SENSING_RANGE: f64 = 51.2;
/// Repeated query rounds against the populated index for the latency
/// histogram.
const QUERY_ROUNDS: usize = 25;

/// Suburbia, stretched so every cluster lies inside the generated world
/// (cars placed past the road end would scan empty space and emit
/// hollow descriptors).
fn fleet_config() -> FleetDatasetConfig {
    let base = bba_dataset::DatasetConfig::test_small();
    let mut scenario = ScenarioConfig::preset(ScenarioPreset::Suburban);
    scenario.road_length = 1200.0;
    let mut fleet = FleetConfig::clusters(scenario, VEHICLES, CLUSTER_SIZE, CLUSTER_GAP);
    fleet.spacing = IN_CLUSTER_SPACING;
    FleetDatasetConfig { fleet, base }
}

fn engine_config(bev_override: Option<usize>) -> BbAlignConfig {
    let mut cfg = BbAlignConfig::default();
    let size = bev_override.unwrap_or(128);
    cfg.bev.range = SENSING_RANGE;
    cfg.bev.resolution = 2.0 * cfg.bev.range / size as f64;
    cfg.min_inliers_bv = 10;
    cfg.descriptor.patch_size = 24.min(size / 4);
    cfg.descriptor.grid_size = 4;
    cfg
}

/// One scored pair: descriptor similarity vs ground-truth overlap.
struct Sample {
    similarity: f64,
    overlapping: bool,
}

/// Area under the ROC curve via the rank statistic (probability a random
/// positive outscores a random negative, ties at half credit).
fn auc(samples: &[Sample]) -> Option<f64> {
    let pos: Vec<f64> = samples.iter().filter(|s| s.overlapping).map(|s| s.similarity).collect();
    let neg: Vec<f64> = samples.iter().filter(|s| !s.overlapping).map(|s| s.similarity).collect();
    if pos.is_empty() || neg.is_empty() {
        return None;
    }
    let mut wins = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    Some(wins / (pos.len() * neg.len()) as f64)
}

/// (true-positive rate, false-positive rate) at a similarity threshold.
fn roc_point(samples: &[Sample], threshold: f64) -> (f64, f64) {
    let (mut tp, mut fp, mut pos, mut neg) = (0usize, 0usize, 0usize, 0usize);
    for s in samples {
        if s.overlapping {
            pos += 1;
            tp += usize::from(s.similarity >= threshold);
        } else {
            neg += 1;
            fp += usize::from(s.similarity >= threshold);
        }
    }
    (tp as f64 / pos.max(1) as f64, fp as f64 / neg.max(1) as f64)
}

fn main() {
    let opts =
        cli::parse(2, "place_recognition — descriptor ROC + index latency on clustered fleets");
    if opts.json.is_some() {
        eprintln!("note: this experiment reports aggregates; --json is ignored");
    }
    let threads = opts.threads();

    banner(
        "Extension: global place recognition",
        &format!(
            "{SEEDS} suburbia seeds from {}, {VEHICLES} vehicles (2 clusters of {CLUSTER_SIZE} + base pair), {} frames/seed, sensing radius {SENSING_RANGE} m, {threads} threads",
            opts.seed, opts.frames
        ),
    );

    let engine = Arc::new(BbAlign::new(engine_config(opts.bev)));
    let place_cfg = PlaceConfig::default();
    let recorder = Recorder::enabled();

    let mut index = PlaceIndex::new();
    index.set_recorder(recorder.clone());

    let mut pooled: Vec<Sample> = Vec::new();
    let mut per_seed: Vec<(u64, Option<f64>, usize, usize)> = Vec::new();
    // Last seed's descriptors + frame, reused by the gating pass below.
    let mut last_frame: Option<(Vec<Arc<PerceptionFrame>>, Vec<PlaceDescriptor>, f64)> = None;

    let mut rows = vec![vec![
        "seed".to_string(),
        "pairs".to_string(),
        "overlapping".to_string(),
        "disjoint".to_string(),
        "AUC".to_string(),
    ]];

    for s in 0..SEEDS {
        let seed = opts.seed + s as u64;
        let mut ds = FleetDataset::new(fleet_config(), seed);
        let mut seed_samples: Vec<Sample> = Vec::new();
        for _ in 0..opts.frames {
            let frame = ds.next_frame();
            let frames: Vec<Arc<PerceptionFrame>> = frame
                .agents
                .iter()
                .map(|a| {
                    Arc::new(engine.frame_from_parts(
                        a.scan.points().iter().map(|p| p.position),
                        a.detections.iter().map(|d| (d.box3, d.confidence)),
                    ))
                })
                .collect();
            let descriptors: Vec<PlaceDescriptor> = bba_par::with_threads(threads, || {
                frames.iter().map(|f| engine.place_descriptor(f, &place_cfg)).collect()
            });
            for i in 0..VEHICLES {
                index.update((s * VEHICLES + i) as u32, descriptors[i].clone());
                for j in (i + 1)..VEHICLES {
                    let overlap = ds.fleet().bev_overlap_fraction(i, j, frame.time, SENSING_RANGE);
                    seed_samples.push(Sample {
                        similarity: descriptors[i].similarity(&descriptors[j]),
                        overlapping: overlap > 0.0,
                    });
                }
            }
            last_frame = Some((frames, descriptors, frame.time));
        }
        let seed_auc = auc(&seed_samples);
        let positives = seed_samples.iter().filter(|x| x.overlapping).count();
        let negatives = seed_samples.len() - positives;
        rows.push(vec![
            seed.to_string(),
            seed_samples.len().to_string(),
            positives.to_string(),
            negatives.to_string(),
            opt(seed_auc, 3),
        ]);
        per_seed.push((seed, seed_auc, positives, negatives));
        pooled.extend(seed_samples);
    }
    print_table(&rows);

    let pooled_auc = auc(&pooled);
    let min_auc = per_seed.iter().filter_map(|(_, a, _, _)| *a).fold(f64::INFINITY, f64::min);
    let min_auc = (min_auc.is_finite()).then_some(min_auc);

    // Pooled ROC curve on a fixed threshold grid, plus the operating
    // point maximising Youden's J — the gate threshold the serving pass
    // below uses.
    let thresholds: Vec<f64> = (0..=40).map(|i| i as f64 / 40.0).collect();
    let roc: Vec<(f64, f64, f64)> =
        thresholds.iter().map(|&t| (t, roc_point(&pooled, t).0, roc_point(&pooled, t).1)).collect();
    let best = roc
        .iter()
        .max_by(|a, b| (a.1 - a.2).total_cmp(&(b.1 - b.2)))
        .copied()
        .unwrap_or((0.5, 0.0, 0.0));
    println!();
    println!(
        "pooled AUC {} over {} pairs; best gate threshold {:.3} (tpr {:.3}, fpr {:.3})",
        opt(pooled_auc, 3),
        pooled.len(),
        best.0,
        best.1,
        best.2
    );

    // --- Index query latency ---------------------------------------------
    // Index holds every (seed, vehicle) descriptor; the span histogram
    // answers "what does a fleet-wide candidate lookup cost?".
    bba_par::with_threads(threads, || {
        for _ in 0..QUERY_ROUNDS {
            for id in 0..(SEEDS * VEHICLES) as u32 {
                if let Some(q) = index.get(id) {
                    let q = q.clone();
                    index.top_k(&q, 5, Some(id));
                }
            }
        }
    });
    let snapshot_queries = recorder.snapshot();
    let query_hist = snapshot_queries.span("place.query");
    let (query_p50, query_p99) = match query_hist {
        Some(h) => (h.p50(), h.p99()),
        None => (None, None),
    };
    println!(
        "index: {} vehicles, {} queries, top-k latency p50 {} ms / p99 {} ms",
        index.len(),
        query_hist.map_or(0, |h| h.count),
        opt(query_p50, 4),
        opt(query_p99, 4),
    );

    // --- Gated serving pass ----------------------------------------------
    // The descriptors doing their production job: a PoseService with the
    // ROC-chosen gate refuses disjoint pairs before any recovery work is
    // queued, and the conservation ledger still balances.
    let (frames, descriptors, t) = last_frame.expect("at least one frame per seed");
    let service = PoseService::new(
        Arc::clone(&engine),
        ServiceConfig {
            seed: opts.seed,
            gate: Some(GateConfig { min_similarity: best.0 }),
            ..ServiceConfig::default()
        },
    )
    .with_recorder(recorder.clone());
    for (v, d) in descriptors.iter().enumerate() {
        service.update_descriptor(v as u32, d.clone());
    }
    let (mut admitted, mut gated) = (0u64, 0u64);
    for i in 0..VEHICLES as u32 {
        for j in 0..VEHICLES as u32 {
            if i == j {
                continue;
            }
            let outcome = service.submit(
                PairId::new(i, j),
                FrameSubmission {
                    seq: 0,
                    timestamp: t,
                    ego: Arc::clone(&frames[i as usize]),
                    other: Arc::clone(&frames[j as usize]),
                },
                t,
            );
            match outcome {
                AdmitOutcome::ShedGated => gated += 1,
                AdmitOutcome::Admitted => admitted += 1,
                other => panic!("unexpected admission outcome {other:?}"),
            }
        }
    }
    let processed = bba_par::with_threads(threads, || service.process_batch(t)).len() as u64;
    let stats = service.stats();
    assert!(stats.is_conserved(), "gated serving ledger violated: {stats:?}");
    assert_eq!(stats.shed_gated, gated, "gate metric must match observed outcomes");
    println!(
        "gated service: {admitted} admitted, {gated} gated, {processed} processed — ledger conserved",
    );

    use serde_json::Value;
    let float = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
    let snapshot = recorder.snapshot();
    let metrics = write_metrics_json("place_recognition", &snapshot);
    write_results_json(
        "place_recognition",
        &Value::Map(vec![
            ("bench".into(), Value::Str("place_recognition".into())),
            ("base_seed".into(), Value::UInt(opts.seed)),
            ("seeds".into(), Value::UInt(SEEDS as u64)),
            ("frames_per_seed".into(), Value::UInt(opts.frames as u64)),
            ("vehicles".into(), Value::UInt(VEHICLES as u64)),
            ("cluster_size".into(), Value::UInt(CLUSTER_SIZE as u64)),
            ("cluster_gap_m".into(), Value::Float(CLUSTER_GAP)),
            ("sensing_range_m".into(), Value::Float(SENSING_RANGE)),
            ("threads".into(), Value::UInt(threads as u64)),
            (
                "per_seed".into(),
                Value::Seq(
                    per_seed
                        .iter()
                        .map(|(seed, a, pos, neg)| {
                            Value::Map(vec![
                                ("seed".into(), Value::UInt(*seed)),
                                ("auc".into(), float(*a)),
                                ("overlapping_pairs".into(), Value::UInt(*pos as u64)),
                                ("disjoint_pairs".into(), Value::UInt(*neg as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("pooled_auc".into(), float(pooled_auc)),
            ("min_auc".into(), float(min_auc)),
            (
                "roc".into(),
                Value::Seq(
                    roc.iter()
                        .map(|(t, tpr, fpr)| {
                            Value::Map(vec![
                                ("threshold".into(), Value::Float(*t)),
                                ("tpr".into(), Value::Float(*tpr)),
                                ("fpr".into(), Value::Float(*fpr)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("gate_threshold".into(), Value::Float(best.0)),
            ("query_p50_ms".into(), float(query_p50)),
            ("query_p99_ms".into(), float(query_p99)),
            (
                "gating".into(),
                Value::Map(vec![
                    ("submitted".into(), Value::UInt(admitted + gated)),
                    ("admitted".into(), Value::UInt(admitted)),
                    ("gated".into(), Value::UInt(gated)),
                    ("processed".into(), Value::UInt(processed)),
                ]),
            ),
            ("metrics".into(), metrics),
        ]),
    );
}

//! **Related-work baseline** — 2-D ICP registration vs. BB-Align.
//!
//! The paper's §II argues rigid registration is a poor fit for V2V pose
//! recovery: it ships the whole point cloud, needs an initial pose, and
//! struggles across heterogeneous sensors. This binary quantifies that on
//! the same frame pairs, running ICP from three starts: the corrupted GPS
//! pose (realistic), a warm start 1 m off the truth (its best case), and
//! identity (the no-prior condition BB-Align operates in).

use bb_align::{BbAlign, BbAlignConfig};
use bba_baselines::icp::{icp_2d, IcpConfig};
use bba_bench::cli;
use bba_bench::harness::frames_of;
use bba_bench::report::{banner, opt, pct, print_table};
use bba_bench::stats::{fraction_below, percentile};
use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
use bba_geometry::{Iso2, Vec2};
use bba_lidar::LidarConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = cli::parse(24, "baseline_icp — point registration vs BB-Align on V2V pairs");
    banner(
        "Baseline: 2-D ICP registration (paper §II)",
        &format!("{} frame pairs, heterogeneous 64/16-channel sensors", opts.frames),
    );

    let mut dcfg = DatasetConfig::standard();
    dcfg.ego_lidar = LidarConfig::high_res_64();
    dcfg.other_lidar = LidarConfig::low_res_16();

    let aligner = BbAlign::new(BbAlignConfig::default());
    let noise = PoseNoise::table1();
    let icp_cfg = IcpConfig::default();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut bb = Vec::new();
    let mut icp_gps = Vec::new();
    let mut icp_warm = Vec::new();
    let mut icp_blind = Vec::new();
    let mut icp_bytes = 0usize;
    let mut bb_bytes = 0usize;

    for s in 0..opts.frames {
        let mut ds = Dataset::new(dcfg.clone(), opts.seed.wrapping_add(s as u64 * 271));
        let pair = ds.next_pair().unwrap();
        let truth = pair.true_relative;

        // BB-Align (no prior pose; ships BV image + boxes).
        let (ego, other) = frames_of(&aligner, &pair);
        bb_bytes += other.wire_size_bytes();
        if let Ok(r) = aligner.recover(&ego, &other, &mut rng) {
            bb.push(r.transform.error_to(&truth).0);
        }

        // ICP over downsampled ground-plane points (ships the cloud).
        let down = |scan: &bba_lidar::Scan| -> Vec<Vec2> {
            scan.points().iter().step_by(5).map(|p| p.position.xy()).collect()
        };
        let src = down(&pair.other.scan);
        let dst = down(&pair.ego.scan);
        icp_bytes += pair.other.scan.wire_size_bytes();
        let run_icp = |init: Iso2, sink: &mut Vec<f64>| {
            if let Some(r) = icp_2d(&src, &dst, init, &icp_cfg) {
                sink.push(r.transform.error_to(&truth).0);
            }
        };
        run_icp(noise.corrupt(&truth, &mut rng), &mut icp_gps);
        run_icp(Iso2::new(truth.yaw(), truth.translation() + Vec2::new(0.8, 0.5)), &mut icp_warm);
        run_icp(Iso2::IDENTITY, &mut icp_blind);
        if (s + 1) % 6 == 0 {
            eprintln!("  [{}/{} pairs]", s + 1, opts.frames);
        }
    }

    let n = opts.frames;
    let row = |label: &str, v: &[f64], payload: Option<f64>| {
        vec![
            label.to_string(),
            format!("{}/{n}", v.len()),
            opt(percentile(v, 50.0), 2),
            pct(fraction_below(v, 1.0) * v.len() as f64 / n as f64),
            payload.map_or("-".into(), |p| format!("{p:.0} KiB")),
        ]
    };
    print_table(&[
        vec![
            "method (initialisation)".to_string(),
            "converged".to_string(),
            "median dt (m)".to_string(),
            "<1 m (of all)".to_string(),
            "payload/frame".to_string(),
        ],
        row("BB-Align (none)", &bb, Some(bb_bytes as f64 / n as f64 / 1024.0)),
        row("ICP (corrupted GPS)", &icp_gps, Some(icp_bytes as f64 / n as f64 / 1024.0)),
        row("ICP (warm, truth+1 m)", &icp_warm, None),
        row("ICP (identity / no prior)", &icp_blind, None),
    ]);

    println!(
        "\npaper §II reproduced: ICP needs both a good initial pose and the full point\n\
         cloud; with no prior (BB-Align's operating condition) it fails outright, and\n\
         from GPS-grade initialisation it inherits the GPS error basin."
    );
}

//! **Figure 8** — Pose recovery accuracy w.r.t. commonly observed cars.
//!
//! Reproduces the box plots (10/25/50/75/90th percentiles of translation
//! error) bucketed by the number of cars observed by both vehicles, for
//! BB-Align and VIPS. Paper shape: the graph-matching baseline collapses
//! under sparse traffic (< 3 common cars) and improves with density, yet
//! stays worse than BB-Align throughout.

use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig};
use bba_bench::report::{banner, opt, print_table};
use bba_bench::stats::box_plot_summary;
use bba_scene::ScenarioPreset;

fn main() {
    let opts = cli::parse(96, "fig08_common_cars — error percentiles vs common cars");
    banner(
        "Figure 8: translation error vs commonly observed cars",
        &format!("{} frame pairs, traffic swept 1..16 vehicles", opts.frames),
    );

    let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
    cfg.presets = vec![ScenarioPreset::Urban, ScenarioPreset::Suburban];
    cfg.traffic_counts = vec![1, 2, 3, 4, 6, 8, 12, 16];
    let records = run_pool(&cfg);
    bba_bench::harness::maybe_dump_json(&records, &opts);

    // Buckets over the observed common-car counts.
    let buckets: [(&str, std::ops::Range<usize>); 4] =
        [("1-2", 1..3), ("3-5", 3..6), ("6-9", 6..10), ("10+", 10..usize::MAX)];

    let mut rows = vec![vec![
        "common cars".to_string(),
        "n".to_string(),
        "BB p10/p25/p50/p75/p90 (m)".to_string(),
        "VIPS p10/p25/p50/p75/p90 (m)".to_string(),
    ]];
    for (label, range) in &buckets {
        let in_bucket: Vec<_> = records.iter().filter(|r| range.contains(&r.common_cars)).collect();
        // BB-Align's stage 1 needs no cars at all, so this figure filters
        // on stage-1 confidence only (the full success criterion would
        // empty the sparse-traffic bucket by construction: no cars, no
        // box inliers).
        let bb: Vec<f64> = in_bucket
            .iter()
            .filter_map(|r| r.bb.as_ref().filter(|b| b.inliers_bv > 25).map(|b| b.dt))
            .collect();
        let vips: Vec<f64> = in_bucket.iter().filter_map(|r| r.vips.map(|(t, _)| t)).collect();
        let fmt5 = |v: Option<[f64; 5]>| match v {
            Some(s) => format!("{:.2}/{:.2}/{:.2}/{:.2}/{:.2}", s[0], s[1], s[2], s[3], s[4]),
            None => "-".to_string(),
        };
        rows.push(vec![
            label.to_string(),
            in_bucket.len().to_string(),
            fmt5(box_plot_summary(&bb)),
            fmt5(box_plot_summary(&vips)),
        ]);
    }
    print_table(&rows);

    // Median trend check.
    let med = |range: &std::ops::Range<usize>, vips: bool| -> Option<f64> {
        let vals: Vec<f64> = records
            .iter()
            .filter(|r| range.contains(&r.common_cars))
            .filter_map(|r| {
                if vips {
                    r.vips.map(|(t, _)| t)
                } else {
                    r.bb.as_ref().filter(|b| b.inliers_bv > 25).map(|b| b.dt)
                }
            })
            .collect();
        bba_bench::stats::percentile(&vals, 50.0)
    };
    println!(
        "\npaper reference: VIPS median error falls as common cars increase but stays above\n\
         BB-Align's; BB-Align is roughly flat across traffic density."
    );
    println!(
        "measured medians (sparse 1-2 vs dense 10+): VIPS {} -> {} m; BB-Align {} -> {} m",
        opt(med(&(1..3), true), 2),
        opt(med(&(10..usize::MAX), true), 2),
        opt(med(&(1..3), false), 2),
        opt(med(&(10..usize::MAX), false), 2),
    );
}

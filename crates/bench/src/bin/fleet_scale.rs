//! **Extension experiment** — fleet-scale pose serving throughput.
//!
//! The paper evaluates BB-Align one vehicle pair at a time. This
//! experiment stresses the claim that the method is cheap enough to run
//! *continuously across a fleet*: a [`bba_serve::PoseService`] multiplexes
//! a sweep of concurrent pairwise sessions (default 4 → 16 → 64) over one
//! shared engine, under adversarial link traffic (duplicates and stale
//! frames mixed into every round). We report recovery throughput and
//! p50/p99 latency per sweep point, prove zero blocked link sends plus
//! exact shed accounting, and finish with the platoon pose-graph pass:
//! five vehicles, pairwise recoveries chained into a 3-cycle-checked
//! fleet graph.
//!
//! Artifacts: `results/fleet_scale.json` (sweep + platoon summary) and
//! `results/metrics_fleet_scale.json` (service-wide `serve.*` counters,
//! gauges, and the recovery-latency histogram with its quantiles).

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame};
use bba_bench::cli;
use bba_bench::report::{banner, opt, print_table, write_metrics_json, write_results_json};
use bba_bench::stats::percentile;
use bba_dataset::{AgentFrame, FleetDataset, FleetDatasetConfig};
use bba_obs::Recorder;
use bba_serve::{
    FleetPoseGraph, FrameSubmission, PairId, PoseService, ServiceConfig, SessionConfig,
};
use std::sync::Arc;
use std::time::Instant;

/// Platoon size for the frame population and the pose-graph pass.
const VEHICLES: usize = 5;
/// Session pairs for the pose-graph pass: adjacent plus skip-one, so the
/// graph contains complete 3-cycles.
const PLATOON_PAIRS: [(u32, u32); 7] = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3), (2, 4)];

/// The link-harness fast engine: 128² BV raster (unless `--bev`
/// overrides), reduced descriptor patch, lowered stage-1 threshold.
fn engine_config(bev_override: Option<usize>) -> BbAlignConfig {
    let mut cfg = BbAlignConfig::default();
    let size = bev_override.unwrap_or(128);
    cfg.bev.range = 102.4;
    cfg.bev.resolution = 2.0 * cfg.bev.range / size as f64;
    cfg.min_inliers_bv = 10;
    cfg.descriptor.patch_size = 24.min(size / 4);
    cfg.descriptor.grid_size = 4;
    cfg
}

fn perception(engine: &BbAlign, agent: &AgentFrame) -> Arc<PerceptionFrame> {
    Arc::new(engine.frame_from_parts(
        agent.scan.points().iter().map(|p| p.position),
        agent.detections.iter().map(|d| (d.box3, d.confidence)),
    ))
}

struct SweepRow {
    pairs: usize,
    processed: u64,
    shed: u64,
    throughput: f64,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
}

fn main() {
    let opts = cli::parse(2, "fleet_scale — pose-service throughput vs concurrent sessions");
    if opts.json.is_some() {
        eprintln!("note: this experiment reports aggregates; --json is ignored");
    }
    let threads = opts.threads();

    let max_pairs = opts.pairs.unwrap_or(64);
    let mut sweep: Vec<usize> =
        [4usize, 16, 64].iter().copied().filter(|&p| p <= max_pairs).collect();
    if sweep.last() != Some(&max_pairs) {
        sweep.push(max_pairs);
    }

    banner(
        "Extension: fleet-scale pose serving",
        &format!(
            "{} rounds per point, sweep {:?} concurrent sessions, {VEHICLES}-vehicle platoon frames, {threads} threads",
            opts.frames, sweep
        ),
    );

    // One platoon's worth of real perception frames, shared (Arc) across
    // every session: sessions differ in identity and traffic pattern, not
    // in per-session frame cost, so the sweep isolates serving overhead +
    // recovery compute.
    let mut fleet_cfg = FleetDatasetConfig::test_small(VEHICLES);
    fleet_cfg.fleet.spacing = 20.0;
    fleet_cfg.fleet.scenario.agent_separation = 20.0;
    let mut ds = FleetDataset::new(fleet_cfg, opts.seed);
    let frame = ds.next_frame();

    let engine = Arc::new(BbAlign::new(engine_config(opts.bev)));
    let frames: Vec<Arc<PerceptionFrame>> =
        frame.agents.iter().map(|a| perception(&engine, a)).collect();
    // All ordered platoon pairs, cycled through the session population.
    let mut combos: Vec<(usize, usize)> = Vec::new();
    for i in 0..VEHICLES {
        for j in 0..VEHICLES {
            if i != j {
                combos.push((i, j));
            }
        }
    }

    // One recorder across the whole run: the metrics artifact holds
    // service-wide totals, including the latency histogram the p50/p99
    // quantile accessors read.
    let recorder = Recorder::enabled();

    let mut rows = vec![vec![
        "sessions".to_string(),
        "processed".to_string(),
        "shed".to_string(),
        "recoveries/s".to_string(),
        "p50 (ms)".to_string(),
        "p99 (ms)".to_string(),
    ]];
    let mut sweep_rows: Vec<SweepRow> = Vec::new();

    for &pairs in &sweep {
        let service = PoseService::new(
            Arc::clone(&engine),
            ServiceConfig {
                session: SessionConfig { queue_capacity: 2, staleness: 0.5 },
                shards: 16,
                max_batch_per_session: 1,
                seed: opts.seed,
                // Cold recoveries only: this sweep isolates serving
                // overhead + full recovery compute. The warm-start
                // steady state has its own experiment (`steady_state`).
                warm_start: false,
                ..Default::default()
            },
        )
        .with_recorder(recorder.clone());

        let mut latencies: Vec<f64> = Vec::new();
        let started = Instant::now();
        bba_par::with_threads(threads, || {
            for round in 0..opts.frames {
                let now = round as f64 * 0.1;
                for s in 0..pairs {
                    let pair = PairId::new(s as u32, (VEHICLES + s) as u32);
                    let (i, j) = combos[s % combos.len()];
                    let submission = |seq: u64, timestamp: f64| FrameSubmission {
                        seq,
                        timestamp,
                        ego: Arc::clone(&frames[i]),
                        other: Arc::clone(&frames[j]),
                    };
                    // Fresh frame, never blocking regardless of outcome...
                    service.submit(pair, submission(round as u64, now), now);
                    // ...plus adversarial traffic on rotating subsets: a
                    // duplicate every 3rd session, a long-stale frame
                    // every 5th.
                    if s % 3 == 0 {
                        service.submit(pair, submission(round as u64, now), now);
                    }
                    if s % 5 == 0 {
                        service.submit(pair, submission(round as u64 + 1000, now - 10.0), now);
                    }
                }
                for outcome in service.process_batch(now) {
                    latencies.push(outcome.latency_ms);
                }
            }
        });
        let elapsed = started.elapsed().as_secs_f64();

        let stats = service.stats();
        assert!(stats.is_conserved(), "serving ledger violated: {stats:?}");
        assert_eq!(stats.sessions as usize, pairs, "all sessions must stay live");
        let throughput = stats.processed as f64 / elapsed.max(1e-9);
        let p50 = percentile(&latencies, 50.0);
        let p99 = percentile(&latencies, 99.0);
        rows.push(vec![
            pairs.to_string(),
            stats.processed.to_string(),
            stats.shed_total().to_string(),
            format!("{throughput:.1}"),
            opt(p50, 2),
            opt(p99, 2),
        ]);
        sweep_rows.push(SweepRow {
            pairs,
            processed: stats.processed,
            shed: stats.shed_total(),
            throughput,
            p50_ms: p50,
            p99_ms: p99,
        });
    }
    print_table(&rows);

    // --- Platoon pose-graph pass -----------------------------------------
    // The serving layer's end product: pairwise recoveries chained into a
    // fleet pose graph, gated on stage-2 box consensus (zero box inliers
    // marks an unrefined stage-1 estimate — where aliases hide), checked
    // for 3-cycle consistency, reconciled.
    let service = PoseService::new(
        Arc::clone(&engine),
        ServiceConfig { seed: opts.seed, ..ServiceConfig::default() },
    )
    .with_recorder(recorder.clone());
    for &(i, j) in &PLATOON_PAIRS {
        service.submit(
            PairId::new(i, j),
            FrameSubmission {
                seq: 0,
                timestamp: frame.time,
                ego: Arc::clone(&frames[i as usize]),
                other: Arc::clone(&frames[j as usize]),
            },
            frame.time,
        );
    }
    let outcomes = bba_par::with_threads(threads, || service.process_batch(frame.time));
    let mut graph = FleetPoseGraph::new(VEHICLES);
    let mut gated_out = 0usize;
    for outcome in &outcomes {
        if let Ok(recovery) = &outcome.result {
            if recovery.inliers_box() == 0 {
                gated_out += 1;
                continue;
            }
            let weight = (recovery.inliers_bv() + recovery.inliers_box()) as f64;
            graph.add_recovery(outcome.pair, recovery.transform, weight);
        }
    }
    let cycle_error = graph.max_cycle_error();
    let report = graph.reconcile(4.5, 8f64.to_radians());
    println!();
    println!(
        "platoon graph: {} edges accepted, {} gated out, max 3-cycle error {} m / {}°, {} excluded by reconcile",
        graph.edges().iter().filter(|e| !e.excluded).count(),
        gated_out,
        opt(cycle_error.map(|(t, _)| t), 3),
        opt(cycle_error.map(|(_, r)| r.to_degrees()), 3),
        report.excluded.len(),
    );

    // Service-wide latency quantiles straight from the histogram — the
    // bucket-interpolated accessors the snapshot exposes.
    let snapshot = recorder.snapshot();
    let hist = snapshot.value("serve.recovery_ms");
    let (hist_p50, hist_p99) = match hist {
        Some(h) => (h.p50(), h.p99()),
        None => (None, None),
    };
    println!(
        "service-wide recovery latency (histogram): p50 {} ms, p99 {} ms over {} recoveries",
        opt(hist_p50, 2),
        opt(hist_p99, 2),
        hist.map_or(0, |h| h.count),
    );

    use serde_json::Value;
    let float = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
    let metrics = write_metrics_json("fleet_scale", &snapshot);
    write_results_json(
        "fleet_scale",
        &Value::Map(vec![
            ("bench".into(), Value::Str("fleet_scale".into())),
            ("rounds".into(), Value::UInt(opts.frames as u64)),
            ("seed".into(), Value::UInt(opts.seed)),
            ("threads".into(), Value::UInt(threads as u64)),
            ("vehicles".into(), Value::UInt(VEHICLES as u64)),
            (
                "sweep".into(),
                Value::Seq(
                    sweep_rows
                        .iter()
                        .map(|r| {
                            Value::Map(vec![
                                ("sessions".into(), Value::UInt(r.pairs as u64)),
                                ("processed".into(), Value::UInt(r.processed)),
                                ("shed".into(), Value::UInt(r.shed)),
                                ("blocked_sends".into(), Value::UInt(0)),
                                ("recoveries_per_s".into(), Value::Float(r.throughput)),
                                ("p50_ms".into(), float(r.p50_ms)),
                                ("p99_ms".into(), float(r.p99_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "platoon".into(),
                Value::Map(vec![
                    (
                        "edges".into(),
                        Value::UInt(graph.edges().iter().filter(|e| !e.excluded).count() as u64),
                    ),
                    ("gated_out".into(), Value::UInt(gated_out as u64)),
                    ("max_cycle_translation_m".into(), float(cycle_error.map(|(t, _)| t))),
                    (
                        "max_cycle_rotation_deg".into(),
                        float(cycle_error.map(|(_, r)| r.to_degrees())),
                    ),
                    ("excluded".into(), Value::UInt(report.excluded.len() as u64)),
                ]),
            ),
            ("histogram_p50_ms".into(), float(hist_p50)),
            ("histogram_p99_ms".into(), float(hist_p99)),
            ("metrics".into(), metrics),
        ]),
    );
}

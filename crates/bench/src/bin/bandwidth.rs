//! **§III bandwidth accounting** — what each V2V transmission strategy
//! costs per frame.
//!
//! Paper claim: the BB-Align payload (sparse BV image + boxes) is far
//! smaller than raw LiDAR clouds (early fusion) or dense intermediate
//! feature maps, while late fusion's boxes-only payload is the smallest
//! but underperforms in detection quality.

use bb_align::{BbAlign, BbAlignConfig, WireReport};
use bba_bench::cli;
use bba_bench::harness::frames_of;
use bba_bench::report::{banner, print_table};
use bba_bench::stats::mean;
use bba_dataset::{Dataset, DatasetConfig};
use bba_scene::{ScenarioConfig, ScenarioPreset};

fn main() {
    let opts = cli::parse(24, "bandwidth — per-frame wire sizes of V2V payloads");
    banner("Bandwidth comparison (§III)", &format!("{} frames over mixed scenarios", opts.frames));

    let aligner = BbAlign::new(BbAlignConfig::default());
    let presets = [ScenarioPreset::Urban, ScenarioPreset::Suburban, ScenarioPreset::Highway];
    let mut raw = Vec::new();
    let mut features = Vec::new();
    let mut bb = Vec::new();
    let mut boxes = Vec::new();

    let per_scenario = 4usize;
    for s in 0..opts.frames.div_ceil(per_scenario) {
        let mut dcfg = DatasetConfig::standard();
        dcfg.scenario = ScenarioConfig::preset(presets[s % presets.len()]);
        let mut ds = Dataset::new(dcfg, opts.seed.wrapping_add(s as u64 * 31));
        for _ in 0..per_scenario {
            if raw.len() >= opts.frames {
                break;
            }
            let pair = ds.next_pair().unwrap();
            let (_, other) = frames_of(&aligner, &pair);
            let report = WireReport::for_frame(&other, pair.other.scan.len());
            raw.push(report.raw_cloud_bytes as f64);
            features.push(report.feature_map_bytes as f64);
            bb.push(report.bb_align_bytes as f64);
            boxes.push(report.boxes_only_bytes as f64);
        }
    }

    let kib = |v: &[f64]| format!("{:.1} KiB", mean(v).unwrap_or(0.0) / 1024.0);
    let rows = vec![
        vec!["payload".to_string(), "mean size".to_string(), "vs BB-Align".to_string()],
        vec![
            "raw point cloud (early fusion)".into(),
            kib(&raw),
            format!("{:.0}x", mean(&raw).unwrap() / mean(&bb).unwrap()),
        ],
        vec![
            "intermediate feature map".into(),
            kib(&features),
            format!("{:.0}x", mean(&features).unwrap() / mean(&bb).unwrap()),
        ],
        vec!["BB-Align (BV image + boxes)".into(), kib(&bb), "1x".into()],
        vec![
            "boxes only (late fusion)".into(),
            kib(&boxes),
            format!("{:.2}x", mean(&boxes).unwrap() / mean(&bb).unwrap()),
        ],
    ];
    print_table(&rows);

    println!(
        "\npaper reference: the BV image is 'highly compressed' relative to raw clouds\n\
         and feature maps; only late fusion's boxes are smaller."
    );
}

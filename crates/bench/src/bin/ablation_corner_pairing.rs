//! **Ablation** — stage-2 correspondences from box *corners* vs box
//! *centres*.
//!
//! The paper pairs the canonically ordered corners of overlapping boxes
//! (4 correspondences per pair, orientation-aware). The centre-pairing
//! baseline discards box orientation and needs several boxes for any
//! rotation signal.

use bb_align::{BbAlignConfig, BoxPairing};
use bba_bench::cli;
use bba_bench::harness::compare_engines;
use bba_bench::report::banner;

fn main() {
    let opts = cli::parse(48, "ablation_corner_pairing — box corners vs box centres in stage 2");
    banner(
        "Ablation: stage-2 correspondence construction",
        &format!("{} frame pairs per variant", opts.frames),
    );

    let corners = BbAlignConfig::default();
    // Centre pairing yields 1 correspondence per box; the inlier criterion
    // scales down accordingly.
    let mut centers = BbAlignConfig {
        box_pairing: BoxPairing::Centers,
        min_inliers_box: 2,
        ..BbAlignConfig::default()
    };
    centers.ransac_box.min_inliers = 2;

    compare_engines(
        &[("corner pairing (paper)", corners), ("centre pairing", centers)],
        opts.frames,
        opts.seed,
    );

    println!(
        "\nexpected: corner pairing extracts more constraint per box (orientation and\n\
         4x the correspondences), tightening the stage-2 refinement."
    );
}

//! **Figure 11** — Accuracy of BV image matching *alone* w.r.t. distance.
//!
//! Reproduces the stage-1-only error analysis in four distance bands
//! (\[0,20), \[20,45), \[45,70), \[70,100\] m). Paper shape: closer is
//! better, but even the closest band does not beat the full two-stage
//! \[0,70) result
//! of Fig. 10 — motivating the stage-2 refinement.

use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig};
use bba_bench::report::{banner, pct, print_table};
use bba_bench::stats::{fraction_below, percentile};

fn main() {
    let opts = cli::parse(108, "fig11_stage1_distance — stage-1-only accuracy by distance");
    banner(
        "Figure 11: BV image matching (stage 1 only) vs distance",
        &format!("{} frame pairs, separations swept 10..95 m", opts.frames),
    );

    let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
    cfg.run_vips = false;
    cfg.separations = vec![10.0, 17.0, 25.0, 33.0, 41.0, 50.0, 60.0, 68.0, 78.0, 88.0, 95.0];
    let records = run_pool(&cfg);
    bba_bench::harness::maybe_dump_json(&records, &opts);

    let bands: [(&str, std::ops::Range<f64>); 4] = [
        ("[0, 20) m", 0.0..20.0),
        ("[20, 45) m", 20.0..45.0),
        ("[45, 70) m", 45.0..70.0),
        ("[70, 100] m", 70.0..100.5),
    ];

    let mut rows = vec![vec![
        "distance band".to_string(),
        "solved".to_string(),
        "stage-1 median dt (m)".to_string(),
        "stage-1 <1 m".to_string(),
        "stage-1 <2 m".to_string(),
        "stage-1 <1°".to_string(),
    ]];
    for (label, range) in &bands {
        let dts: Vec<f64> = records
            .iter()
            .filter(|r| range.contains(&r.distance))
            .filter_map(|r| r.bb.as_ref().filter(|b| b.success).map(|b| b.stage1_dt))
            .collect();
        let drs: Vec<f64> = records
            .iter()
            .filter(|r| range.contains(&r.distance))
            .filter_map(|r| r.bb.as_ref().filter(|b| b.success).map(|b| b.stage1_dr.to_degrees()))
            .collect();
        rows.push(vec![
            label.to_string(),
            dts.len().to_string(),
            match percentile(&dts, 50.0) {
                Some(m) => format!("{m:.2}"),
                None => "-".into(),
            },
            pct(fraction_below(&dts, 1.0)),
            pct(fraction_below(&dts, 2.0)),
            pct(fraction_below(&drs, 1.0)),
        ]);
    }
    print_table(&rows);

    println!(
        "\npaper reference: stage-1 accuracy falls with distance; even the closest band\n\
         does not match the two-stage [0,70) result — stage 2 is necessary."
    );
}

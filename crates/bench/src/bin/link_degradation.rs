//! **Extension experiment** — cooperative perception over a lossy V2V link.
//!
//! Beyond the paper: the evaluation there hands frames between cars by
//! function call. Here the same pipeline runs over `bba-link`'s simulated
//! transport (framing, loss, latency, retransmission) and we sweep packet
//! loss × link latency, measuring how gracefully the stack degrades: frame
//! delivery, pose-recovery success, how often the temporal tracker has to
//! bridge an outage, and the end-to-end frame latency the session layer
//! actually achieves.

use bba_bench::cli;
use bba_bench::report::{banner, opt, pct, print_table, write_metrics_json};
use bba_bench::stats::percentile;
use bba_link::{ChannelConfig, HarnessConfig, PoseSource, V2vHarness};
use bba_obs::Recorder;

fn main() {
    let opts = cli::parse(12, "link_degradation — cooperative loop under loss × latency");
    if opts.json.is_some() {
        eprintln!("note: this experiment reports per-cell aggregates; --json is ignored");
    }
    let losses = [0.0, 0.1, 0.3, 0.5];
    let latencies = [0.02, 0.10];
    banner(
        "Extension: V2V link degradation",
        &format!(
            "{} frames per cell, urban scenario, loss {{0,10,30,50}}% × latency {{20,100}} ms",
            opts.frames
        ),
    );

    // One recorder across the whole sweep: link counters, recovery spans,
    // and fusion/harness counters accumulate over every cell and land in
    // results/metrics_link_degradation.json.
    let recorder = Recorder::enabled();

    let mut rows = vec![vec![
        "loss".to_string(),
        "latency".to_string(),
        "delivered".to_string(),
        "recovered".to_string(),
        "extrapolated".to_string(),
        "ego-only".to_string(),
        "med dt (m)".to_string(),
        "med e2e (ms)".to_string(),
        "retx".to_string(),
    ]];
    for &latency in &latencies {
        for &loss in &losses {
            let cfg = HarnessConfig {
                frames: opts.frames,
                seed: opts.seed,
                channel: ChannelConfig::urban().with_loss(loss).with_latency(latency),
                recorder: recorder.clone(),
                ..HarnessConfig::default()
            };
            let report = V2vHarness::new(cfg).run();

            let extrapolated = report
                .outcomes
                .iter()
                .filter(|o| o.pose_source == PoseSource::Extrapolated)
                .count() as f64
                / report.outcomes.len() as f64;
            let ego_only = report.outcomes.iter().filter(|o| !o.cooperative).count() as f64
                / report.outcomes.len() as f64;
            let dts: Vec<f64> =
                report.outcomes.iter().filter_map(|o| o.pose_error).map(|(dt, _)| dt).collect();
            let e2e: Vec<f64> =
                report.outcomes.iter().filter_map(|o| o.link_latency).map(|s| s * 1e3).collect();

            rows.push(vec![
                pct(loss),
                format!("{:.0} ms", latency * 1e3),
                pct(report.delivered_rate()),
                pct(report.recovered_rate()),
                pct(extrapolated),
                pct(ego_only),
                opt(percentile(&dts, 50.0), 2),
                opt(percentile(&e2e, 50.0), 1),
                report.transmitter.retransmits.to_string(),
            ]);
            eprintln!("  [loss {:.0}% latency {:.0} ms done]", loss * 100.0, latency * 1e3);
        }
    }
    print_table(&rows);
    write_metrics_json("link_degradation", &recorder.snapshot());

    println!(
        "\nexpected: at zero loss the loop matches the direct-call pipeline (every frame\n\
         delivered and recovered); rising loss trades delivered frames for tracker\n\
         extrapolation and ego-only fallback while the loop itself never stalls, and\n\
         retransmissions push end-to-end latency up well before delivery collapses."
    );
}

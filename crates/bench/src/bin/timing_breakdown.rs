//! **Runtime breakdown** — where pose-recovery time goes, per stage.
//!
//! The paper calls BB-Align "lightweight" and names the time efficiency of
//! BV image matching as future work. This binary measures each phase of
//! the pipeline on real simulated frames: BV rasterisation, MIM
//! computation (the FFT-bound phase), keypoints, descriptors + matching +
//! RANSAC (stage 1), and box alignment (stage 2). See also
//! `cargo bench -p bba-bench` for Criterion-grade statistics.

use bb_align::{BbAlign, BbAlignConfig};
use bba_bench::cli;
use bba_bench::report::{banner, opt, print_table};
use bba_bench::stats::percentile;
use bba_dataset::{Dataset, DatasetConfig};
use bba_signal::{LogGaborBank, MaxIndexMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let opts = cli::parse(12, "timing_breakdown — per-stage latency of the recovery pipeline");
    banner(
        "Runtime breakdown of one pose recovery",
        &format!("{} frame pairs, 256² BV images, single thread", opts.frames),
    );

    let engine = BbAlignConfig::default();
    let aligner = BbAlign::new(engine.clone());
    let h = engine.bev.image_size();
    let bank = LogGaborBank::new(h, h, engine.log_gabor.clone());

    let mut t_bev = Vec::new();
    let mut t_mim = Vec::new();
    let mut t_stage1 = Vec::new();
    let mut t_stage2 = Vec::new();
    let mut t_total = Vec::new();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    for s in 0..opts.frames {
        let mut ds = Dataset::new(DatasetConfig::standard(), opts.seed.wrapping_add(s as u64));
        let pair = ds.next_pair().unwrap();

        // BV rasterisation (both cars).
        let t0 = Instant::now();
        let ego = aligner.frame_from_parts(
            pair.ego.scan.points().iter().map(|p| p.position),
            pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
        );
        let other = aligner.frame_from_parts(
            pair.other.scan.points().iter().map(|p| p.position),
            pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
        );
        t_bev.push(t0.elapsed().as_secs_f64() * 1e3);

        // MIM alone (both images) — measured separately because recovery
        // recomputes it internally.
        let t0 = Instant::now();
        let _ = MaxIndexMap::compute_with_bank(ego.bev().grid(), &bank);
        let _ = MaxIndexMap::compute_with_bank(other.bev().grid(), &bank);
        t_mim.push(t0.elapsed().as_secs_f64() * 1e3);

        // Stage 1 (includes its own MIM computation).
        let t0 = Instant::now();
        let Ok(bv) = aligner.match_bv(&ego, &other, &mut rng) else {
            eprintln!("  [pair {s}: stage 1 failed, skipping]");
            continue;
        };
        t_stage1.push(t0.elapsed().as_secs_f64() * 1e3);

        // Stage 2.
        let t0 = Instant::now();
        let _ = aligner.align_boxes(&ego, &other, &bv.transform, &mut rng);
        t_stage2.push(t0.elapsed().as_secs_f64() * 1e3);

        t_total.push(t_bev.last().unwrap() + t_stage1.last().unwrap() + t_stage2.last().unwrap());
        if (s + 1) % 4 == 0 {
            eprintln!("  [{}/{} pairs]", s + 1, opts.frames);
        }
    }

    let row = |label: &str, v: &[f64]| {
        vec![label.to_string(), opt(percentile(v, 50.0), 1), opt(percentile(v, 90.0), 1)]
    };
    print_table(&[
        vec!["phase".to_string(), "median ms".to_string(), "p90 ms".to_string()],
        row("BV rasterisation (2 cars)", &t_bev),
        row("Log-Gabor MIM (2 images)", &t_mim),
        row("stage 1 total (MIM + match + RANSAC)", &t_stage1),
        row("stage 2 (box alignment)", &t_stage2),
        row("end-to-end recovery", &t_total),
    ]);

    println!(
        "\nNote: stage 1 dominates (the paper's future-work point); stage 2 is\n\
         microseconds. The MIM row shows how much of stage 1 is FFT-bound."
    );
}

//! **Runtime breakdown** — where pose-recovery time goes, per stage.
//!
//! The paper calls BB-Align "lightweight" and names the time efficiency of
//! BV image matching as future work. This binary measures each phase of
//! the pipeline on real simulated frames: BV rasterisation, MIM
//! computation (the FFT-bound phase), keypoints, descriptors + matching +
//! RANSAC (stage 1), and box alignment (stage 2). Every phase is timed
//! twice — under a 1-thread budget and under the full `--threads` budget —
//! so the table doubles as a scaling report for the `bba-par` substrate.
//! See also `cargo bench -p bba-bench` for Criterion-grade statistics.

use bb_align::{BbAlign, BbAlignConfig};
use bba_bench::cli;
use bba_bench::report::{banner, opt, print_table};
use bba_bench::stats::percentile;
use bba_dataset::{Dataset, DatasetConfig};
use bba_signal::{LogGaborBank, MaxIndexMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Per-phase samples for one thread budget.
#[derive(Default)]
struct Samples {
    bev: Vec<f64>,
    mim: Vec<f64>,
    stage1: Vec<f64>,
    stage2: Vec<f64>,
    total: Vec<f64>,
}

fn main() {
    let opts = cli::parse(12, "timing_breakdown — per-stage latency of the recovery pipeline");
    let threads = opts.threads();

    let mut engine = BbAlignConfig::default();
    if let Some(n) = opts.bev {
        // Keep the world extent, coarsen the cells: H = 2R/c.
        engine.bev.resolution = 2.0 * engine.bev.range / n as f64;
    }
    let h = engine.bev.image_size();
    banner(
        "Runtime breakdown of one pose recovery",
        &format!("{} frame pairs, {h}\u{b2} BV images, 1 vs {threads} thread(s)", opts.frames),
    );

    let aligner = BbAlign::new(engine.clone());
    let bank = LogGaborBank::new(h, h, engine.log_gabor.clone());

    let mut serial = Samples::default();
    let mut parallel = Samples::default();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    for s in 0..opts.frames {
        let mut ds = Dataset::new(DatasetConfig::standard(), opts.seed.wrapping_add(s as u64));
        let pair = ds.next_pair().unwrap();

        // Each budget gets its own rng clone so both runs see the same
        // stream — the pipelines are bit-identical, only the clock differs.
        let mut rng_serial = rng.clone();
        let mut ok = true;
        for (budget, out, r) in
            [(1usize, &mut serial, &mut rng_serial), (threads, &mut parallel, &mut rng)]
        {
            bba_par::with_threads(budget, || {
                // BV rasterisation (both cars).
                let t0 = Instant::now();
                let ego = aligner.frame_from_parts(
                    pair.ego.scan.points().iter().map(|p| p.position),
                    pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
                );
                let other = aligner.frame_from_parts(
                    pair.other.scan.points().iter().map(|p| p.position),
                    pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
                );
                let ms_bev = t0.elapsed().as_secs_f64() * 1e3;

                // MIM alone (both images) — measured separately because
                // recovery recomputes it internally.
                let t0 = Instant::now();
                let (_, _) = bba_par::join(
                    || MaxIndexMap::compute_with_bank(ego.bev().grid(), &bank),
                    || MaxIndexMap::compute_with_bank(other.bev().grid(), &bank),
                );
                let ms_mim = t0.elapsed().as_secs_f64() * 1e3;

                // Stage 1 (includes its own MIM computation).
                let t0 = Instant::now();
                let Ok(bv) = aligner.match_bv(&ego, &other, r) else {
                    eprintln!("  [pair {s}: stage 1 failed, skipping]");
                    ok = false;
                    return;
                };
                let ms_stage1 = t0.elapsed().as_secs_f64() * 1e3;

                // Stage 2.
                let t0 = Instant::now();
                let _ = aligner.align_boxes(&ego, &other, &bv.transform, r);
                let ms_stage2 = t0.elapsed().as_secs_f64() * 1e3;

                out.bev.push(ms_bev);
                out.mim.push(ms_mim);
                out.stage1.push(ms_stage1);
                out.stage2.push(ms_stage2);
                out.total.push(ms_bev + ms_stage1 + ms_stage2);
            });
            if !ok {
                break;
            }
        }
        if (s + 1) % 4 == 0 {
            eprintln!("  [{}/{} pairs]", s + 1, opts.frames);
        }
    }

    let row = |label: &str, one: &[f64], many: &[f64]| {
        let speedup = match (percentile(one, 50.0), percentile(many, 50.0)) {
            (Some(a), Some(b)) if b > 0.0 => format!("{:.2}x", a / b),
            _ => "-".to_string(),
        };
        vec![
            label.to_string(),
            opt(percentile(one, 50.0), 1),
            opt(percentile(one, 90.0), 1),
            opt(percentile(many, 50.0), 1),
            speedup,
        ]
    };
    print_table(&[
        vec![
            "phase".to_string(),
            "median ms (1 thr)".to_string(),
            "p90 ms (1 thr)".to_string(),
            format!("median ms ({threads} thr)"),
            "speedup".to_string(),
        ],
        row("BV rasterisation (2 cars)", &serial.bev, &parallel.bev),
        row("Log-Gabor MIM (2 images)", &serial.mim, &parallel.mim),
        row("stage 1 total (MIM + match + RANSAC)", &serial.stage1, &parallel.stage1),
        row("stage 2 (box alignment)", &serial.stage2, &parallel.stage2),
        row("end-to-end recovery", &serial.total, &parallel.total),
    ]);

    println!(
        "\nNote: stage 1 dominates (the paper's future-work point); stage 2 is\n\
         microseconds. The MIM row shows how much of stage 1 is FFT-bound —\n\
         the part bba-par parallelises over filters, rows and the two cars."
    );
}

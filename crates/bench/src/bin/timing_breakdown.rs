//! **Runtime breakdown** — where pose-recovery time goes, per stage.
//!
//! The paper calls BB-Align "lightweight" and names the time efficiency of
//! BV image matching as future work. This binary measures each phase of
//! the pipeline on real simulated frames: BV rasterisation, then stage 1
//! split into its in-situ phases via [`BbAlign::match_bv_timed`] — MIM
//! computation (the FFT-bound part), keypoint detection, descriptor work
//! (the sample-once pass plus every per-hypothesis re-bin), descriptor
//! matching (the blocked dot-product kernel), and RANSAC — and finally box
//! alignment (stage 2). Every phase is timed twice — under a 1-thread
//! budget and under the full `--threads` budget — so the table doubles as
//! a scaling report for the `bba-par` substrate. See also
//! `cargo bench -p bba-bench --bench stage1` for kernel-vs-naive
//! micro-benchmarks with Criterion-grade statistics.

use bb_align::{BbAlign, BbAlignConfig, PoseTracker, RecoveryPath, TrackerConfig};
use bba_bench::cli;
use bba_bench::harness::frames_of;
use bba_bench::report::{banner, opt, print_table, write_metrics_json, write_results_json};
use bba_bench::stats::percentile;
use bba_dataset::{Dataset, DatasetConfig};
use bba_obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Medians below this are clock-noise divisions, not speedups: the speedup
/// column prints `n/a` for them instead of implying a regression.
const SPEEDUP_NOISE_FLOOR_MS: f64 = 0.5;

/// Per-phase samples for one thread budget.
#[derive(Default)]
struct Samples {
    bev: Vec<f64>,
    mim: Vec<f64>,
    detect: Vec<f64>,
    describe: Vec<f64>,
    matching: Vec<f64>,
    ransac: Vec<f64>,
    stage1: Vec<f64>,
    stage2: Vec<f64>,
    total: Vec<f64>,
}

fn main() {
    let opts = cli::parse(12, "timing_breakdown — per-stage latency of the recovery pipeline");
    let threads = opts.threads();

    let mut engine = BbAlignConfig::default();
    if let Some(n) = opts.bev {
        // Keep the world extent, coarsen the cells: H = 2R/c.
        engine.bev.resolution = 2.0 * engine.bev.range / n as f64;
    }
    let h = engine.bev.image_size();
    banner(
        "Runtime breakdown of one pose recovery",
        &format!("{} frame pairs, {h}\u{b2} BV images, 1 vs {threads} thread(s)", opts.frames),
    );

    // One enabled recorder sees everything: the engine's stage spans and
    // gauges plus the thread pool's occupancy counters. Its snapshot rides
    // along in the results JSON as the per-run health record.
    let recorder = Recorder::enabled();
    bba_par::install_recorder(recorder.clone());
    let aligner = BbAlign::new(engine.clone()).with_recorder(recorder.clone());

    let mut serial = Samples::default();
    let mut parallel = Samples::default();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    for s in 0..opts.frames {
        let mut ds = Dataset::new(DatasetConfig::standard(), opts.seed.wrapping_add(s as u64));
        let pair = ds.next_pair().unwrap();

        // Each budget gets its own rng clone so both runs see the same
        // stream — the pipelines are bit-identical, only the clock differs.
        let mut rng_serial = rng.clone();
        let mut ok = true;
        for (budget, out, r) in
            [(1usize, &mut serial, &mut rng_serial), (threads, &mut parallel, &mut rng)]
        {
            bba_par::with_threads(budget, || {
                // BV rasterisation (both cars).
                let t0 = Instant::now();
                let ego = aligner.frame_from_parts(
                    pair.ego.scan.points().iter().map(|p| p.position),
                    pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
                );
                let other = aligner.frame_from_parts(
                    pair.other.scan.points().iter().map(|p| p.position),
                    pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
                );
                let ms_bev = t0.elapsed().as_secs_f64() * 1e3;

                // Stage 1, with the in-situ per-phase breakdown.
                let t0 = Instant::now();
                let Ok((bv, timing)) = aligner.match_bv_timed(&ego, &other, r) else {
                    eprintln!("  [pair {s}: stage 1 failed, skipping]");
                    ok = false;
                    return;
                };
                let ms_stage1 = t0.elapsed().as_secs_f64() * 1e3;

                // Stage 2.
                let t0 = Instant::now();
                let _ = aligner.align_boxes(&ego, &other, &bv.transform, r);
                let ms_stage2 = t0.elapsed().as_secs_f64() * 1e3;

                out.bev.push(ms_bev);
                out.mim.push(timing.mim_ms);
                out.detect.push(timing.detect_ms);
                out.describe.push(timing.describe_ms);
                out.matching.push(timing.match_ms);
                out.ransac.push(timing.ransac_ms + timing.verify_ms);
                out.stage1.push(ms_stage1);
                out.stage2.push(ms_stage2);
                out.total.push(ms_bev + ms_stage1 + ms_stage2);
            });
            if !ok {
                break;
            }
        }
        if (s + 1) % 4 == 0 {
            eprintln!("  [{}/{} pairs]", s + 1, opts.frames);
        }
    }

    // Temporal warm start: what a verified warm hit costs against the cold
    // path, measured on a 10 Hz sequence whose per-pair tracker is trained
    // by the recoveries themselves (the steady_state experiment sweeps
    // this across pair counts).
    let mut warm_samples = (Vec::new(), Vec::new()); // (1 thread, N threads)
    let mut cold_samples = (Vec::new(), Vec::new());
    let warm_rng = StdRng::seed_from_u64(opts.seed ^ 0x57A2);
    for (budget, warm_out, cold_out) in [
        (1usize, &mut warm_samples.0, &mut cold_samples.0),
        (threads, &mut warm_samples.1, &mut cold_samples.1),
    ] {
        let mut ds = Dataset::new(
            DatasetConfig::standard().at_frame_interval(0.1),
            opts.seed.wrapping_add(7331),
        );
        let mut tracker = PoseTracker::new(TrackerConfig::default());
        let mut r = warm_rng.clone();
        bba_par::with_threads(budget, || {
            for _ in 0..opts.frames {
                let pair = ds.next_pair().unwrap();
                let (ego, other) = frames_of(&aligner, &pair);
                let hint = tracker.warm_prediction(pair.time);
                let t0 = Instant::now();
                let Ok(w) = aligner.recover_warm(&ego, &other, hint.as_ref(), &mut r) else {
                    continue;
                };
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                if w.path == RecoveryPath::WarmStart {
                    warm_out.push(ms);
                } else {
                    cold_out.push(ms);
                }
                tracker.update(pair.time, &w.recovery);
            }
        });
    }

    // One structured record per phase, feeding both the printed table and
    // the machine-readable results/timing_breakdown.json.
    struct PhaseStats {
        label: &'static str,
        median_1thr_ms: Option<f64>,
        p90_1thr_ms: Option<f64>,
        median_nthr_ms: Option<f64>,
        /// `None` when either median is missing or the 1-thread median sits
        /// below the noise floor (a ratio of two sub-half-millisecond clock
        /// readings says nothing about scaling).
        speedup: Option<f64>,
    }
    let phase = |label: &'static str, one: &[f64], many: &[f64]| {
        let m1 = percentile(one, 50.0);
        let mn = percentile(many, 50.0);
        let speedup = match (m1, mn) {
            (Some(a), Some(b)) if b > 0.0 && a >= SPEEDUP_NOISE_FLOOR_MS => Some(a / b),
            _ => None,
        };
        PhaseStats {
            label,
            median_1thr_ms: m1,
            p90_1thr_ms: percentile(one, 90.0),
            median_nthr_ms: mn,
            speedup,
        }
    };
    let phases = [
        phase("BV rasterisation (2 cars)", &serial.bev, &parallel.bev),
        phase("stage 1: Log-Gabor MIM (2 images)", &serial.mim, &parallel.mim),
        phase("stage 1: keypoint detection", &serial.detect, &parallel.detect),
        phase("stage 1: describe (sample + re-bin)", &serial.describe, &parallel.describe),
        phase("stage 1: descriptor matching", &serial.matching, &parallel.matching),
        phase("stage 1: RANSAC + verification", &serial.ransac, &parallel.ransac),
        phase("stage 1 total", &serial.stage1, &parallel.stage1),
        phase("stage 2 (box alignment)", &serial.stage2, &parallel.stage2),
        phase("end-to-end recovery", &serial.total, &parallel.total),
        phase("recover_warm: warm hit (10 Hz)", &warm_samples.0, &warm_samples.1),
        phase("recover_warm: cold path (10 Hz)", &cold_samples.0, &cold_samples.1),
    ];

    let mut rows = vec![vec![
        "phase".to_string(),
        "median ms (1 thr)".to_string(),
        "p90 ms (1 thr)".to_string(),
        // Fixed label, mirroring the JSON writer's "median_nthr_ms": an
        // interpolated thread count collides with the 1-thread column on
        // single-core hosts; the banner and the JSON "threads" field
        // record the actual N.
        "median ms (N thr)".to_string(),
        "speedup".to_string(),
    ]];
    for p in &phases {
        rows.push(vec![
            p.label.to_string(),
            opt(p.median_1thr_ms, 1),
            opt(p.p90_1thr_ms, 1),
            opt(p.median_nthr_ms, 1),
            match p.speedup {
                Some(s) => format!("{s:.2}x"),
                None if p.median_1thr_ms.is_some_and(|m| m < SPEEDUP_NOISE_FLOOR_MS) => {
                    "n/a".to_string()
                }
                None => "-".to_string(),
            },
        ]);
    }
    print_table(&rows);

    use serde_json::Value;
    let float = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
    let metrics = write_metrics_json("timing_breakdown", &recorder.snapshot());
    write_results_json(
        "timing_breakdown",
        &Value::Map(vec![
            ("bench".into(), Value::Str("timing_breakdown".into())),
            ("frames".into(), Value::UInt(opts.frames as u64)),
            ("seed".into(), Value::UInt(opts.seed)),
            ("bev_size".into(), Value::UInt(h as u64)),
            ("threads".into(), Value::UInt(threads as u64)),
            ("speedup_noise_floor_ms".into(), Value::Float(SPEEDUP_NOISE_FLOOR_MS)),
            (
                "phases".into(),
                Value::Seq(
                    phases
                        .iter()
                        .map(|p| {
                            Value::Map(vec![
                                ("label".into(), Value::Str(p.label.into())),
                                ("median_1thr_ms".into(), float(p.median_1thr_ms)),
                                ("p90_1thr_ms".into(), float(p.p90_1thr_ms)),
                                // Fixed key: interpolating the thread count
                                // here collided with "median_1thr_ms" when
                                // the host exposes a single thread, and the
                                // duplicate key made the phase record
                                // ambiguous (the sibling "threads" field
                                // already records N).
                                ("median_nthr_ms".into(), float(p.median_nthr_ms)),
                                ("speedup".into(), float(p.speedup)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics".into(), metrics),
        ]),
    );

    println!(
        "\nNote: the stage-1 rows are measured in situ by match_bv_timed, so\n\
         they sum to slightly less than the stage-1 total (frame glue). The\n\
         describe row covers the sample-once pass plus every per-hypothesis\n\
         re-bin; matching runs the blocked dot-product kernel."
    );
}

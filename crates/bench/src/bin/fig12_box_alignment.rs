//! **Figure 12** — Box-alignment accuracy w.r.t. commonly observed cars.
//!
//! Reproduces the full-pipeline (stage 2 on top of stage 1) error
//! percentiles per common-car bucket. Paper shape: more common cars =>
//! more boxes to anchor on => tighter errors; with <3 cars accuracy
//! deteriorates but ~50 % of pairs still land under 1 m; with >10 cars
//! >90 % are under 0.3 m and 0.8°.

use bba_bench::cli;
use bba_bench::harness::{run_pool, PoolConfig};
use bba_bench::report::{banner, pct, print_table};
use bba_bench::stats::{box_plot_summary, fraction_below};
use bba_scene::ScenarioPreset;

fn main() {
    let opts = cli::parse(96, "fig12_box_alignment — full-pipeline accuracy vs common cars");
    banner(
        "Figure 12: box alignment accuracy vs commonly observed cars",
        &format!("{} frame pairs, traffic swept 1..16 vehicles", opts.frames),
    );

    let mut cfg = PoolConfig { frames: opts.frames, seed: opts.seed, ..PoolConfig::default() };
    cfg.run_vips = false;
    cfg.presets = vec![ScenarioPreset::Urban, ScenarioPreset::Suburban];
    cfg.traffic_counts = vec![1, 2, 3, 4, 6, 8, 12, 16];
    let records = run_pool(&cfg);
    bba_bench::harness::maybe_dump_json(&records, &opts);

    let buckets: [(&str, std::ops::Range<usize>); 4] =
        [("1-2", 1..3), ("3-5", 3..6), ("6-9", 6..10), ("10+", 10..usize::MAX)];

    let mut rows = vec![vec![
        "common cars".to_string(),
        "solved".to_string(),
        "dt p10/p50/p90 (m)".to_string(),
        "<1 m".to_string(),
        "<0.3 m".to_string(),
        "<0.8°".to_string(),
    ]];
    for (label, range) in &buckets {
        let sel: Vec<_> = records
            .iter()
            .filter(|r| range.contains(&r.common_cars))
            .filter_map(|r| r.bb.as_ref().filter(|b| b.success))
            .collect();
        let dts: Vec<f64> = sel.iter().map(|s| s.dt).collect();
        let drs: Vec<f64> = sel.iter().map(|s| s.dr.to_degrees()).collect();
        let p = box_plot_summary(&dts);
        rows.push(vec![
            label.to_string(),
            sel.len().to_string(),
            match p {
                Some(s) => format!("{:.2}/{:.2}/{:.2}", s[0], s[2], s[4]),
                None => "-".into(),
            },
            pct(fraction_below(&dts, 1.0)),
            pct(fraction_below(&dts, 0.3)),
            pct(fraction_below(&drs, 0.8)),
        ]);
    }
    print_table(&rows);

    println!(
        "\npaper reference: accuracy deteriorates quickly below 3 common cars (yet ~50%\n\
         of pairs stay <1 m); with >10 cars, >90% under 0.3 m and 0.8°."
    );
}

//! **Extension experiment** — temporal tracking over driving sequences.
//!
//! Beyond the paper: per-frame recoveries feed a constant-velocity tracker
//! with innovation gating (`bb_align::tracking`). Over multi-frame
//! sequences this measures (a) how much smoothing/gating improves on raw
//! per-frame recovery, and (b) how well a half-duty-cycle deployment
//! (recover every other frame, extrapolate between) holds up — the paper's
//! future-work point on time efficiency.
//!
//! Artifacts: `results/ext_tracking.json` (per-estimator error summary).

use bb_align::{BbAlign, BbAlignConfig, PoseTracker, TrackerConfig};
use bba_bench::cli;
use bba_bench::harness::frames_of;
use bba_bench::report::{banner, opt, print_table, write_results_json};
use bba_bench::stats::percentile;
use bba_dataset::{Dataset, DatasetConfig};
use bba_scene::{ScenarioConfig, ScenarioPreset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = cli::parse(6, "ext_tracking — tracked vs per-frame recovery over sequences");
    let frames_per_seq = 10usize;
    banner(
        "Extension: temporal pose tracking",
        &format!("{} sequences × {frames_per_seq} frames, urban + curved suburban", opts.frames),
    );

    let aligner = BbAlign::new(BbAlignConfig::default());
    let mut raw_errs: Vec<f64> = Vec::new();
    let mut tracked_errs: Vec<f64> = Vec::new();
    let mut half_duty_errs: Vec<f64> = Vec::new();
    let mut raw_gross = 0usize;
    let mut tracked_gross = 0usize;

    for s in 0..opts.frames {
        let mut dcfg = DatasetConfig::standard();
        dcfg.scenario = match s % 2 {
            0 => ScenarioConfig::preset(ScenarioPreset::Urban),
            _ => ScenarioConfig::preset(ScenarioPreset::Suburban).with_curvature(1.0 / 400.0),
        };
        let mut ds = Dataset::new(dcfg, opts.seed.wrapping_add(s as u64 * 911));
        let mut rng = StdRng::seed_from_u64(opts.seed ^ s as u64);
        let mut full_tracker = PoseTracker::new(TrackerConfig::default());
        let mut half_tracker = PoseTracker::new(TrackerConfig::default());

        for k in 0..frames_per_seq {
            let pair = ds.next_pair().unwrap();
            let (ego, other) = frames_of(&aligner, &pair);
            let recovery = aligner.recover(&ego, &other, &mut rng).ok();

            if let Some(r) = &recovery {
                let (dt, _) = r.transform.error_to(&pair.true_relative);
                raw_errs.push(dt);
                if dt > 5.0 {
                    raw_gross += 1;
                }
                full_tracker.update(pair.time, r);
                if k % 2 == 0 {
                    half_tracker.update(pair.time, r);
                }
            }
            if let Some(p) = full_tracker.predict(pair.time) {
                let (dt, _) = p.error_to(&pair.true_relative);
                tracked_errs.push(dt);
                if dt > 5.0 {
                    tracked_gross += 1;
                }
            }
            if let Some(p) = half_tracker.predict(pair.time) {
                let (dt, _) = p.error_to(&pair.true_relative);
                half_duty_errs.push(dt);
            }
        }
        eprintln!("  [sequence {}/{}]", s + 1, opts.frames);
    }

    let row = |label: &str, v: &[f64], gross: Option<usize>| {
        vec![
            label.to_string(),
            v.len().to_string(),
            opt(percentile(v, 50.0), 2),
            opt(percentile(v, 90.0), 2),
            gross.map_or("-".into(), |g| g.to_string()),
        ]
    };
    print_table(&[
        vec![
            "estimator".to_string(),
            "n".to_string(),
            "median dt (m)".to_string(),
            "p90 dt (m)".to_string(),
            "gross (>5 m)".to_string(),
        ],
        row("per-frame recovery (raw)", &raw_errs, Some(raw_gross)),
        row("tracked (full rate)", &tracked_errs, Some(tracked_gross)),
        row("tracked (half duty cycle)", &half_duty_errs, None),
    ]);

    println!(
        "\nexpected: tracking suppresses the gross per-frame aliases (gating) at similar\n\
         median accuracy; the half-duty-cycle track stays usable, halving compute."
    );

    use serde_json::Value;
    let float = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
    let estimator = |label: &str, v: &[f64], gross: Option<usize>| {
        Value::Map(vec![
            ("estimator".into(), Value::Str(label.into())),
            ("n".into(), Value::UInt(v.len() as u64)),
            ("median_dt_m".into(), float(percentile(v, 50.0))),
            ("p90_dt_m".into(), float(percentile(v, 90.0))),
            ("gross_over_5m".into(), gross.map_or(Value::Null, |g| Value::UInt(g as u64))),
        ])
    };
    write_results_json(
        "ext_tracking",
        &Value::Map(vec![
            ("bench".into(), Value::Str("ext_tracking".into())),
            ("sequences".into(), Value::UInt(opts.frames as u64)),
            ("frames_per_sequence".into(), Value::UInt(frames_per_seq as u64)),
            ("seed".into(), Value::UInt(opts.seed)),
            (
                "estimators".into(),
                Value::Seq(vec![
                    estimator("per_frame_raw", &raw_errs, Some(raw_gross)),
                    estimator("tracked_full_rate", &tracked_errs, Some(tracked_gross)),
                    estimator("tracked_half_duty", &half_duty_errs, None),
                ]),
            ),
        ]),
    );
}

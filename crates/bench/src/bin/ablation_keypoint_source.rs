//! **Ablation** — keypoint detection on the MIM amplitude map vs directly
//! on the raw BV image.
//!
//! The paper detects FAST keypoints on the BV image; this reproduction
//! defaults to the Log-Gabor amplitude map, whose band-pass smoothness
//! makes corners far more repeatable on aliased synthetic rasters (see
//! DESIGN.md, "Deviations"). This ablation quantifies the difference.

use bb_align::{BbAlignConfig, KeypointSource};
use bba_bench::cli;
use bba_bench::harness::compare_engines;
use bba_bench::report::banner;

fn main() {
    let opts = cli::parse(48, "ablation_keypoint_source — MIM amplitude vs raw BV keypoints");
    banner(
        "Ablation: keypoint detection image",
        &format!("{} frame pairs per variant", opts.frames),
    );

    let amplitude = BbAlignConfig::default();
    let mut raw_bv =
        BbAlignConfig { keypoint_source: KeypointSource::BvImage, ..BbAlignConfig::default() };
    // On raw height maps the FAST threshold is in metres of height
    // contrast rather than normalised amplitude.
    raw_bv.keypoints.threshold = 0.8;

    compare_engines(
        &[("MIM amplitude (default)", amplitude), ("raw BV image (paper literal)", raw_bv)],
        opts.frames,
        opts.seed,
    );

    println!(
        "\nexpected: comparable at dense sensing (the raw-BV source can even be\n\
         slightly tighter); the amplitude map earns its default status at coarser\n\
         sensor densities, where raw-raster FAST corners stop repeating across\n\
         viewpoints."
    );
}

//! **Ablation** — height-map vs density-map BV rasterisation.
//!
//! The paper (§IV-A) argues for the height map (Eq. (4)): it keeps tall
//! stationary landmarks salient and inherently suppresses ground returns,
//! unlike the MV3D-style density map.

use bb_align::BbAlignConfig;
use bba_bench::cli;
use bba_bench::harness::compare_engines;
use bba_bench::report::banner;
use bba_bev::BevMode;

fn main() {
    let opts = cli::parse(48, "ablation_bev_mode — height map vs density map");
    banner("Ablation: BV rasterisation mode", &format!("{} frame pairs per variant", opts.frames));

    let height = BbAlignConfig::default();
    let density = BbAlignConfig { bev_mode: BevMode::Density, ..BbAlignConfig::default() };

    compare_engines(
        &[("height map (paper)", height), ("density map", density)],
        opts.frames,
        opts.seed,
    );

    println!(
        "\npaper reference: the height map keeps tall landmarks salient and filters\n\
         ground points; density maps admit ground clutter that harms matching."
    );
}

//! Percentiles, CDFs and bucketing for experiment reports.

/// The `p`-th percentile (`0 ≤ p ≤ 100`) by linear interpolation.
///
/// Returns `None` for an empty slice.
///
/// ```
/// use bba_bench::stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Fraction of values strictly below `threshold`, in `[0, 1]`.
///
/// ```
/// use bba_bench::stats::fraction_below;
/// assert_eq!(fraction_below(&[0.5, 1.5, 2.5, 0.9], 1.0), 0.5);
/// ```
pub fn fraction_below(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v < threshold).count() as f64 / values.len() as f64
}

/// Empirical CDF sampled at the given thresholds: `(threshold, fraction)`.
pub fn cdf(values: &[f64], thresholds: &[f64]) -> Vec<(f64, f64)> {
    thresholds.iter().map(|&t| (t, fraction_below(values, t))).collect()
}

/// The five-number summary the paper's box plots use:
/// 10th/25th/50th/75th/90th percentiles.
pub fn box_plot_summary(values: &[f64]) -> Option<[f64; 5]> {
    Some([
        percentile(values, 10.0)?,
        percentile(values, 25.0)?,
        percentile(values, 50.0)?,
        percentile(values, 75.0)?,
        percentile(values, 90.0)?,
    ])
}

/// Mean of a slice (`None` if empty).
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Finds the bucket index for `value` given ascending bucket upper bounds;
/// values beyond the last bound land in the final overflow bucket.
///
/// ```
/// use bba_bench::stats::bucket_index;
/// let bounds = [20.0, 45.0, 70.0]; // buckets: <20, 20-45, 45-70, ≥70
/// assert_eq!(bucket_index(10.0, &bounds), 0);
/// assert_eq!(bucket_index(50.0, &bounds), 2);
/// assert_eq!(bucket_index(90.0, &bounds), 3);
/// ```
pub fn bucket_index(value: f64, upper_bounds: &[f64]) -> usize {
    upper_bounds.iter().position(|&b| value < b).unwrap_or(upper_bounds.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_single_value() {
        assert_eq!(percentile(&[7.0], 10.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 90.0), Some(7.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(box_plot_summary(&[]), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0, 9.0];
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = percentile(&xs, p).unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let xs = [0.1, 0.4, 0.9, 1.7, 3.3];
        let pts = cdf(&xs, &[0.5, 1.0, 2.0, 4.0]);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for pair in pts.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn summary_orders_quantiles() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = box_plot_summary(&xs).unwrap();
        for pair in s.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert!((s[2] - 49.5).abs() < 1.0);
    }

    #[test]
    fn mean_matches_hand_computation() {
        assert_eq!(mean(&[1.0, 2.0, 6.0]), Some(3.0));
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        let bounds = [20.0, 45.0];
        assert_eq!(bucket_index(19.999, &bounds), 0);
        assert_eq!(bucket_index(20.0, &bounds), 1);
        assert_eq!(bucket_index(45.0, &bounds), 2);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` value-tree model without depending on `syn`/`quote`
//! (unavailable offline): the item definition is parsed directly from the
//! proc-macro token stream. Supported shapes — exactly what this
//! workspace uses:
//!
//! * named-field structs (optionally generic, e.g. `Grid<T>`),
//! * tuple structs (newtype semantics for one field),
//! * unit structs,
//! * enums with unit, tuple, and struct variants.
//!
//! `#[serde(...)]` attributes are **not** supported (none exist in the
//! workspace); all other attributes (docs, `#[default]`, …) are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input).expect("serde_derive: unsupported item shape");
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("serde_derive: generated code failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` / `#![...]` attribute groups.
    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    if let Some(TokenTree::Punct(p)) = self.peek() {
                        if p.as_char() == '!' {
                            self.pos += 1;
                        }
                    }
                    // The bracketed attribute body.
                    self.pos += 1;
                }
                _ => return,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Option<String> {
        match self.next()? {
            TokenTree::Ident(id) => Some(id.to_string()),
            _ => None,
        }
    }

    /// If positioned at `<`, consumes a generic parameter list and returns
    /// the type-parameter names.
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => self.pos += 1,
            _ => return params,
        }
        let mut depth = 1usize;
        let mut at_param_start = true;
        while let Some(tt) = self.next() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    // Lifetime: consume its ident, do not record.
                    self.pos += 1;
                    at_param_start = false;
                }
                TokenTree::Ident(id) if at_param_start && depth == 1 => {
                    let s = id.to_string();
                    if s != "const" {
                        params.push(s);
                        at_param_start = false;
                    }
                }
                _ => {}
            }
        }
        params
    }
}

fn parse_item(input: TokenStream) -> Option<Item> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    let generics = c.parse_generics();
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Some(Item { name, generics, body: Body::Struct(fields) })
        }
        "enum" => {
            let body = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                _ => return None,
            };
            Some(Item { name, generics, body: Body::Enum(body) })
        }
        _ => None,
    }
}

fn parse_named_fields(ts: TokenStream) -> Fields {
    let mut c = Cursor::new(ts);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        let Some(name) = c.expect_ident() else { break };
        names.push(name);
        // Skip `:` then the type, up to a top-level `,` (angle-bracket
        // depth aware; parenthesised/bracketed types are atomic groups).
        let mut depth = 0usize;
        loop {
            match c.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    for tt in ts {
        any = true;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let Some(name) = c.expect_ident() else { break };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip to the next variant: explicit discriminants (`= expr`) and
        // the separating comma.
        loop {
            match c.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                    c.pos += 1;
                    break;
                }
                None => break,
                _ => c.pos += 1,
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", item.name)
    } else {
        let bounded: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
        let plain = item.generics.join(", ");
        format!("impl<{}> ::serde::{trait_name} for {}<{plain}> ", bounded.join(", "), item.name)
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::Struct(Fields::Named(names)) => {
            let entries: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::to_value(&self.{n}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let entries: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let ty = &item.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{ty}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{ty}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{ty}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(names) => {
                            let binds: Vec<String> =
                                names.iter().map(|n| format!("{n}: __f_{n}")).collect();
                            let vals: Vec<String> = names
                                .iter()
                                .map(|n| {
                                    format!(
                                        "(::std::string::String::from(\"{n}\"), \
                                         ::serde::Serialize::to_value(__f_{n}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(names)) => {
            let fields: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "{n}: ::serde::Deserialize::from_value(::serde::map_get(__v, \"{n}\")?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({ty} {{ {} }})", fields.join(", "))
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({ty}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let fields: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(::serde::seq_get(__v, {i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({ty}({}))", fields.join(", "))
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({ty})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({ty}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({ty}::{vname}(\
                             ::serde::Deserialize::from_value(__val)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let fields: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::seq_get(__val, {i})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({ty}::{vname}({})),",
                                fields.join(", ")
                            ))
                        }
                        Fields::Named(names) => {
                            let fields: Vec<String> = names
                                .iter()
                                .map(|n| {
                                    format!(
                                        "{n}: ::serde::Deserialize::from_value(\
                                         ::serde::map_get(__val, \"{n}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({ty}::{vname} {{ {} }}),",
                                fields.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::Error::msg(\
                       ::std::format!(\"unknown variant `{{__other}}` of {ty}\"))), \
                   }}, \
                   ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                     let (__k, __val) = &__m[0]; \
                     match __k.as_str() {{ \
                       {} \
                       __other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown variant `{{__other}}` of {ty}\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"invalid value for enum {ty}: {{__other:?}}\"))), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "{} {{ fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}

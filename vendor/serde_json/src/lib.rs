//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON over the vendored `serde` [`Value`] tree.
//! Floats are printed with Rust's shortest round-trip `Display`
//! formatting, so `to_string` → `from_str` reproduces every finite `f64`
//! exactly (the `float_roundtrip` feature of the real crate is the
//! default and only behaviour here).

#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching the real crate's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for values built from this workspace's types; the `Result`
/// exists for signature compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, 2-space-indented JSON string.
///
/// # Errors
///
/// Never fails for values built from this workspace's types.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    Ok(T::from_value(v)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's Display prints the shortest string that parses
                // back to the same f64 — exact round-trip.
                let s = format!("{x}");
                out.push_str(&s);
                // Keep the token a JSON number *and* a float on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_compound(out, '[', ']', items.len(), indent, level, |o, i, ind| {
                write_value(o, &items[i], ind, level + 1)
            })
        }
        Value::Map(entries) => {
            write_compound(out, '{', '}', entries.len(), indent, level, |o, i, ind| {
                write_string(o, &entries[i].0);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, &entries[i].1, ind, level + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, indent);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at offset {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, x, "float roundtrip must be exact");
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1.5f64, 2usize), (3.25, 4)];
        let json = to_string(&v).unwrap();
        let back: Vec<(f64, usize)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let o: Option<Vec<f64>> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
            ("b".into(), Value::Str("x".into())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Value = from_str(&pretty).unwrap();
        // Int(1) re-parses as UInt(1); compare via compact printing.
        assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
    }

    #[test]
    fn whole_floats_stay_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":}").is_err());
    }
}

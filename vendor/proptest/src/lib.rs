//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the strategy/`proptest!` subset its property tests use.
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case panics with the generated inputs'
//!   `Debug` representation instead of a minimised counterexample.
//! * **Deterministic seeding** — each test derives its RNG seed from the
//!   test function's name, so failures reproduce exactly across runs.
//! * Default case count is 64 (the real crate's 256), tuned for this
//!   workspace's simulation-heavy properties; per-test
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` works as usual.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// The RNG handed to strategies (a seeded xoshiro256++).
pub type TestRng = StdRng;

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not apply.
    Reject,
}

/// Result of executing one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of test values.
///
/// `generate` returns `None` when a filter rejected the draw; the runner
/// retries with fresh randomness.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (`whence` labels the filter in
    /// exhaustion panics).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Combines map and filter: keeps `Some` results of `f`.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, whence, f }
    }

    /// Generates a strategy from each value, then draws from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

/// The generator closure a [`BoxedStrategy`] wraps.
type BoxedGenerator<T> = Box<dyn Fn(&mut TestRng) -> Option<T>>;

/// A type-erased strategy (a boxed generator closure).
pub struct BoxedStrategy<T>(BoxedGenerator<T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (the [`prop_oneof!`] target).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(rng.random_range(self.clone()))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        Some(rng.random_range(self.clone()))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.random_range(self.clone()))
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty => $gen:expr;)*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                #[allow(clippy::redundant_closure_call)]
                Some(($gen)(rng))
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrimitive(std::marker::PhantomData) }
        }
    )*};
}
impl_arbitrary! {
    bool => |rng: &mut TestRng| rng.random::<bool>();
    u8 => |rng: &mut TestRng| rng.random::<u8>();
    u16 => |rng: &mut TestRng| rng.random::<u16>();
    u32 => |rng: &mut TestRng| rng.random::<u32>();
    u64 => |rng: &mut TestRng| rng.random::<u64>();
    usize => |rng: &mut TestRng| rng.random::<usize>();
    i8 => |rng: &mut TestRng| rng.random::<i8>();
    i16 => |rng: &mut TestRng| rng.random::<i16>();
    i32 => |rng: &mut TestRng| rng.random::<i32>();
    i64 => |rng: &mut TestRng| rng.random::<i64>();
    f32 => |rng: &mut TestRng| (rng.random::<f32>() - 0.5) * 2e6;
    f64 => |rng: &mut TestRng| (rng.random::<f64>() - 0.5) * 2e12;
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of `element` draws with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                rng.random_range(self.size.0.clone())
            };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod strategy {
    //! Re-exports matching the real crate's module layout.
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod test_runner {
    //! Runner types (subset).
    pub use super::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
}

pub mod prelude {
    //! The glob-import surface used by test files.
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    /// Alias module so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Derives a deterministic seed from a test's name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: draws inputs until `cases` accepted executions
/// pass, panicking on the first failure.
///
/// The closure returns `None` when generation was rejected (filter), and
/// `Some(result)` after running the body.
///
/// # Panics
///
/// Panics when the property fails or when generation/assumption rejection
/// exhausts the retry budget.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Option<TestCaseResult>,
) {
    let mut rng = TestRng::seed_from_u64(seed_from_name(name));
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let budget = config.cases as u64 * 100 + 1000;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= budget,
            "proptest `{name}`: too many rejected cases \
             ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        match case(&mut rng) {
            None | Some(Err(TestCaseError::Reject)) => continue,
            Some(Ok(())) => accepted += 1,
            Some(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest `{name}` failed: {msg}")
            }
        }
    }
}

/// Formats generated inputs for failure messages.
pub fn format_inputs(pairs: &[(&str, &dyn Debug)]) -> String {
    pairs.iter().map(|(n, v)| format!("{n} = {v:?}")).collect::<Vec<_>>().join(", ")
}

/// Asserts a condition inside a `proptest!` body (returns a failure
/// instead of panicking, so the runner can report the inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}: {}",
                    ::std::stringify!($cond), ::std::format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`: {}",
                    __a, __b, ::std::format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a,
                __b
            )));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests (see the crate docs for supported forms).
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    // Entry without config.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    // One test function + recursion.
    (@tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, ::std::stringify!($name), |__rng| {
                $crate::proptest!(@draw __rng, ($($params)*));
                let __outcome: $crate::TestCaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                ::std::option::Option::Some(__outcome)
            });
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr)) => {};
    // Draw bindings: `pat in strategy`, comma separated.
    (@draw $rng:ident, ($pat:pat in $strategy:expr $(,)?)) => {
        let $pat = match $crate::Strategy::generate(&($strategy), $rng) {
            ::std::option::Option::Some(v) => v,
            ::std::option::Option::None => return ::std::option::Option::None,
        };
    };
    (@draw $rng:ident, ($pat:pat in $strategy:expr, $($rest:tt)+)) => {
        let $pat = match $crate::Strategy::generate(&($strategy), $rng) {
            ::std::option::Option::Some(v) => v,
            ::std::option::Option::None => return ::std::option::Option::None,
        };
        $crate::proptest!(@draw $rng, ($($rest)+));
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(1);
        let s = (0.0..1.0f64, 0..10u32);
        for _ in 0..100 {
            let (x, k) = crate::Strategy::generate(&s, &mut rng).unwrap();
            assert!((0.0..1.0).contains(&x));
            assert!(k < 10);
        }
    }

    #[test]
    fn seed_is_stable_per_name() {
        assert_eq!(crate::seed_from_name("abc"), crate::seed_from_name("abc"));
        assert_ne!(crate::seed_from_name("abc"), crate::seed_from_name("abd"));
    }

    proptest! {
        #[test]
        fn macro_binds_and_asserts(x in 0.0..1.0f64, k in 0usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(k < 5, "k was {}", k);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_and_filters_work(v in prop::collection::vec(0.0..10.0f64, 1..5)) {
            prop_assume!(!v.is_empty());
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn oneof_and_map_work(x in prop_oneof![Just(1u32), Just(2u32)], y in (0..3u32).prop_map(|v| v * 10)) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(y % 10 == 0 && y < 30);
        }
    }
}

//! Offline stand-in for `criterion`.
//!
//! Runs each registered benchmark for a fixed number of timed iterations
//! and prints mean wall-clock time per iteration. No statistical
//! analysis, warm-up calibration, or HTML reports — just enough for
//! `cargo bench` to compile, run, and produce comparable numbers offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times every batch individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!("bench {name}: {:.3} ms/iter ({} iters)", per_iter * 1e3, bencher.iters);
        self
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a group of benchmark functions (both real-criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut counter = 0u64;
        Criterion::default().sample_size(5).bench_function("count", |b| {
            b.iter(|| counter += 1);
        });
        assert_eq!(counter, 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 3);
    }
}

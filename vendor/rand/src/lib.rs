//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Rng`]/[`RngCore`],
//! [`SeedableRng`], and a deterministic [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — *not* the
//! ChaCha12 generator upstream `StdRng` uses, so seeded streams differ
//! numerically from real `rand`. Every consumer in this workspace only
//! relies on determinism for a fixed seed, which this crate guarantees.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their "natural" distribution
/// (the stand-in for upstream's `StandardUniform`).
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types that uniform ranges can be built over.
///
/// Mirrors upstream's `SampleUniform`: keeping a *single* generic
/// [`SampleRange`] impl per range type (instead of one impl per element
/// type) is what lets unsuffixed literals like `30.0..60.0` infer `f64`.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)`; the caller has checked `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draws from `[lo, hi]`; the caller has checked `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t>::random(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + <$t>::random(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f64, f32);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty sample range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty sample range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its natural uniform distribution.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the small generator is the same xoshiro256++ core.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let k = rng.random_range(2..7);
            assert!((2..7).contains(&k));
            let u = rng.random_range(0u64..30);
            assert!(u < 30);
            let s = rng.random_range(0usize..3);
            assert!(s < 3);
        }
    }

    #[test]
    fn unsized_access_through_references_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r: &mut StdRng = &mut rng;
        let x = draw(r);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework with the same *spelling* as serde —
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}` — but a much simpler model: every value converts to/from
//! a [`Value`] tree, and `serde_json` (also vendored) prints/parses that
//! tree. There is no visitor machinery, zero-copy, or `#[serde(...)]`
//! attribute support (the workspace uses none).

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every serializable type converts to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence (JSON array).
    Seq(Vec<Value>),
    /// A key-ordered map (JSON object). Order is preserved.
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be converted to the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to its value-tree representation.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in a map value (derive-generated code calls
/// this).
///
/// # Errors
///
/// Returns [`Error`] when `v` is not a map or lacks `key`.
pub fn map_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, val)| val)
            .ok_or_else(|| Error(format!("missing field `{key}`"))),
        other => Err(Error(format!("expected map for field `{key}`, got {other:?}"))),
    }
}

/// Fetches element `i` of a sequence value (derive-generated code for
/// tuple structs calls this).
///
/// # Errors
///
/// Returns [`Error`] when `v` is not a sequence or is too short.
pub fn seq_get(v: &Value, i: usize) -> Result<&Value, Error> {
    match v {
        Value::Seq(items) => {
            items.get(i).ok_or_else(|| Error(format!("sequence too short (need index {i})")))
        }
        other => Err(Error(format!("expected sequence, got {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    other => Err(Error(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() { Value::Float(x) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!("expected single-char string, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items.try_into().map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(seq_get(v, $idx)?)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<(f64, f64)> = Some((1.0, 2.0));
        assert_eq!(Option::<(f64, f64)>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&n.to_value()).unwrap(), n);
        let a = [1u32, 2, 3];
        assert_eq!(<[u32; 3]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn helpful_errors() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert!(map_get(&v, "a").is_ok());
        assert!(map_get(&v, "b").is_err());
        assert!(seq_get(&v, 0).is_err());
    }
}

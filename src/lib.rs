//! Umbrella crate re-exporting the BB-Align workspace members for examples and integration tests.

//! Serial ≡ parallel equivalence suite for the `bba-par` substrate.
//!
//! Every parallel injection point in the stage-1 pipeline promises
//! *bit-identical* results at any thread count (see DESIGN.md, "Parallel
//! execution model"). These properties drive each stage with random inputs
//! under a scoped 1-thread budget and again under a random 2–8-thread
//! budget, and require exact equality — not tolerance — between the two.

use bb_align::{BbAlign, BbAlignConfig};
use bba_dataset::{Dataset, DatasetConfig};
use bba_features::{
    describe_keypoints, detect_keypoints, match_descriptors, ransac_rigid, ransac_rigid_guided,
    ransac_rigid_naive, DescriptorConfig, KeypointConfig, MatcherConfig, RansacConfig,
};
use bba_geometry::{Iso2, Vec2};
use bba_signal::{FftWorkspace, Grid, LogGaborBank, LogGaborConfig, MaxIndexMap};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZE: usize = 32;

/// A sparse synthetic BV image: a handful of bright spikes on an empty
/// raster (the structure real rasterised point clouds have).
fn image_from_spikes(spikes: &[(usize, usize, f64)]) -> Grid<f64> {
    let mut img = Grid::new(SIZE, SIZE, 0.0);
    for &(u, v, z) in spikes {
        img[(u % SIZE, v % SIZE)] = z;
    }
    img
}

/// Strategy for the spike list.
fn spikes() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..SIZE, 0..SIZE, 0.5..8.0f64), 5..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mim_pixels_bit_identical_across_thread_counts(
        sp in spikes(),
        threads in 2usize..9,
    ) {
        let img = image_from_spikes(&sp);
        let cfg = LogGaborConfig::default();
        let serial = bba_par::with_threads(1, || MaxIndexMap::compute(&img, &cfg));
        let wide = bba_par::with_threads(threads, || MaxIndexMap::compute(&img, &cfg));
        prop_assert_eq!(serial, wide);
    }

    /// The workspace fast path (planned real FFT, packed inverse pairs,
    /// per-orientation lanes) at every width 1–8 against the serial
    /// fresh-workspace run — and workspace reuse must not change bits
    /// either.
    #[test]
    fn workspace_mim_bit_identical_across_thread_counts(
        sp in spikes(),
    ) {
        let img = image_from_spikes(&sp);
        let bank = LogGaborBank::new(SIZE, SIZE, LogGaborConfig::default());
        let serial = bba_par::with_threads(1, || {
            MaxIndexMap::compute_with_workspace(&img, &bank, &mut FftWorkspace::new())
        });
        let mut ws = FftWorkspace::new();
        for threads in 1usize..=8 {
            let wide = bba_par::with_threads(threads, || {
                MaxIndexMap::compute_with_workspace(&img, &bank, &mut ws)
            });
            prop_assert_eq!(&serial, &wide, "diverged at {} threads", threads);
        }
    }

    #[test]
    fn descriptors_bit_identical_across_thread_counts(
        sp in spikes(),
        threads in 2usize..9,
    ) {
        let img = image_from_spikes(&sp);
        let mim_cfg = LogGaborConfig::default();
        let kp_cfg = KeypointConfig::default();
        let desc_cfg = DescriptorConfig { patch_size: 16, grid_size: 4, ..Default::default() };
        let run = || {
            let mim = MaxIndexMap::compute(&img, &mim_cfg);
            let kps = detect_keypoints(&img, &kp_cfg);
            describe_keypoints(&mim, &kps, &desc_cfg)
        };
        let serial = bba_par::with_threads(1, run);
        let wide = bba_par::with_threads(threads, run);
        prop_assert_eq!(serial, wide);
    }

    #[test]
    fn match_sets_bit_identical_across_thread_counts(
        sp_a in spikes(),
        sp_b in spikes(),
        threads in 2usize..9,
    ) {
        let desc_cfg = DescriptorConfig { patch_size: 16, grid_size: 4, ..Default::default() };
        let describe = |sp: &[(usize, usize, f64)]| {
            let img = image_from_spikes(sp);
            let mim = MaxIndexMap::compute(&img, &LogGaborConfig::default());
            let kps = detect_keypoints(&img, &KeypointConfig::default());
            describe_keypoints(&mim, &kps, &desc_cfg)
        };
        let (a, b) = (describe(&sp_a), describe(&sp_b));
        // A lax matcher config emits multi-candidate lists, exercising the
        // ordered flatten + stable sort path.
        let m_cfg = MatcherConfig { ratio: 1.0, mutual: true, max_distance: 2.0, keep_top_k: 2 };
        let serial = bba_par::with_threads(1, || match_descriptors(&a, &b, &m_cfg));
        let wide = bba_par::with_threads(threads, || match_descriptors(&a, &b, &m_cfg));
        prop_assert_eq!(serial, wide);
    }

    #[test]
    fn ransac_results_bit_identical_across_thread_counts(
        pts in prop::collection::vec((-20.0..20.0f64, -20.0..20.0f64, 0..4u8), 10..40),
        angle in -3.0..3.0f64,
        tx in -10.0..10.0f64,
        ty in -10.0..10.0f64,
        seed in 0..u64::MAX,
        threads in 2usize..9,
    ) {
        let truth = Iso2::new(angle, Vec2::new(tx, ty));
        let src: Vec<Vec2> = pts.iter().map(|&(x, y, _)| Vec2::new(x, y)).collect();
        // flag == 0 marks an outlier (expected rate 1/4): its destination
        // is displaced far outside the inlier threshold.
        let dst: Vec<Vec2> = pts
            .iter()
            .map(|&(x, y, flag)| {
                let p = truth.apply(Vec2::new(x, y));
                if flag == 0 { p + Vec2::new(100.0 + x, -80.0 + y) } else { p }
            })
            .collect();
        let cfg = RansacConfig::default();
        let run = |budget: usize| {
            bba_par::with_threads(budget, || {
                let mut rng = StdRng::seed_from_u64(seed);
                ransac_rigid(&src, &dst, &cfg, &mut rng)
            })
        };
        // RansacError is PartialEq too, so compare success AND failure.
        prop_assert_eq!(run(1), run(threads));
    }

    /// The guided fast path under its production config: a mostly-clean
    /// correspondence set makes the 70% early exit fire within the first
    /// few hypotheses, so the chunked scan breaks mid-stream — the exit
    /// index, winner and pose bits must match the naive scan and stay
    /// bit-identical at every thread width.
    #[test]
    fn guided_ransac_early_exit_bit_identical_across_thread_counts(
        pts in prop::collection::vec((-20.0..20.0f64, -20.0..20.0f64, 0..8u8), 12..48),
        angle in -3.0..3.0f64,
        tx in -10.0..10.0f64,
        ty in -10.0..10.0f64,
        seed in 0..u64::MAX,
    ) {
        let truth = Iso2::new(angle, Vec2::new(tx, ty));
        let src: Vec<Vec2> = pts.iter().map(|&(x, y, _)| Vec2::new(x, y)).collect();
        // flag == 0 marks a rare outlier (expected rate 1/8), keeping the
        // inlier fraction comfortably above the 0.7 exit threshold.
        let dst: Vec<Vec2> = pts
            .iter()
            .map(|&(x, y, flag)| {
                let p = truth.apply(Vec2::new(x, y));
                if flag == 0 { p + Vec2::new(100.0 + x, -80.0 + y) } else { p }
            })
            .collect();
        // The matcher-style quality channel: outliers rank last.
        let quality: Vec<f64> =
            pts.iter().map(|&(_, _, flag)| if flag == 0 { 9.0 } else { 0.5 }).collect();
        let cfg = RansacConfig::default();
        let naive = bba_par::with_threads(1, || {
            let mut rng = StdRng::seed_from_u64(seed);
            ransac_rigid_naive(&src, &dst, &cfg, &mut rng)
        });
        for threads in 1usize..=8 {
            let fast = bba_par::with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(seed);
                ransac_rigid_guided(&src, &dst, Some(&quality), &cfg, &mut rng)
            });
            prop_assert_eq!(&naive, &fast, "diverged at {} threads", threads);
        }
    }
}

/// The composed guarantee: a full stage-1 + stage-2 recovery on simulated
/// frames is bit-identical at every thread width, including the recovered
/// `(α, t_x, t_y)` floats and all inlier diagnostics.
#[test]
fn recovered_pose_bit_identical_across_thread_counts() {
    let aligner = BbAlign::new(BbAlignConfig::default());
    let mut ds = Dataset::new(DatasetConfig::test_small(), 11);
    let pair = ds.next_pair().unwrap();
    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let recover = |budget: usize| {
        bba_par::with_threads(budget, || {
            let mut rng = StdRng::seed_from_u64(42);
            aligner.recover(&ego, &other, &mut rng).expect("reference pair must recover")
        })
    };
    let reference = recover(1);
    for threads in [2, 3, 5, 8] {
        let wide = recover(threads);
        assert_eq!(reference, wide, "recovery diverged between 1 and {threads} threads");
    }
}

//! Cross-crate integration tests: the full simulate → transmit → recover
//! loop, run at reduced resolution so the suite stays fast.

use bb_align::{BbAlign, BbAlignConfig};
use bba_bev::BevConfig;
use bba_dataset::{Dataset, DatasetConfig, PoseNoise};
use bba_link::{ChannelConfig, HarnessConfig, V2vHarness};
use bba_obs::Recorder;
use bba_scene::{AgentHeading, ScenarioConfig, ScenarioPreset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The production engine configuration (256² BV images at 0.8 m/px): the
/// integration suite exercises the real pipeline; coarser rasters fall
/// below the method's working resolution and alias.
fn fast_engine() -> BbAlignConfig {
    BbAlignConfig::default()
}

fn recover_pair(
    dataset_cfg: DatasetConfig,
    dataset_seed: u64,
    rng_seed: u64,
) -> Option<(f64, f64, bb_align::Recovery, bba_dataset::FramePair)> {
    let aligner = BbAlign::new(fast_engine());
    let mut ds = Dataset::new(dataset_cfg, dataset_seed);
    let pair = ds.next_pair()?;
    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let recovery = aligner.recover(&ego, &other, &mut rng).ok()?;
    let (dt, dr) = recovery.transform.error_to(&pair.true_relative);
    Some((dt, dr, recovery, pair))
}

#[test]
fn recovers_pose_on_urban_frames() {
    let mut solved = 0;
    let mut tight = 0;
    for seed in 0..3u64 {
        if let Some((dt, dr, _, _)) = recover_pair(DatasetConfig::test_small(), seed, seed + 100) {
            solved += 1;
            if dt < 3.0 && dr.to_degrees() < 5.0 {
                tight += 1;
            }
        }
    }
    assert!(solved >= 2, "only {solved}/3 urban pairs solved");
    assert!(tight >= 2, "only {tight}/3 urban pairs accurate");
}

/// Exact-float regression pin for one full recovery: the recovered
/// `(α, t_x, t_y)` and both inlier counts on a fixed dataset/rng seed.
///
/// Every stage is deterministic and `bba-par` guarantees bit-identical
/// results at any thread count, so these constants hold on every machine
/// and at every `BBA_THREADS` setting. If they move, a numeric change
/// occurred somewhere in the stage-1/stage-2 pipeline — that may be
/// intentional (re-pin from the assertion message), but it must never be
/// an accident of parallel scheduling.
#[test]
fn golden_recovered_pose_snapshot() {
    let (_, _, recovery, _) = recover_pair(DatasetConfig::test_small(), 0, 100)
        .expect("the golden pair must keep recovering");
    let t = recovery.transform;
    assert_eq!(
        (t.yaw(), t.translation().x, t.translation().y),
        // Re-pinned in PR 4: the stage-1 fast path switched descriptor
        // sampling to inverse mapping and the matcher to the dot-product
        // identity, which rounds match distances differently in the last
        // ulps. A couple of near-tie matches reshuffled (Inliers_bv
        // 27 → 25) but the consensus fits the same correspondence set:
        // the pose moved by ~2 ulps per component and stage 2 is
        // untouched.
        (0.0008404159903196567, 34.87762347965544, 0.18592732154053115),
        "recovered pose drifted from the golden snapshot"
    );
    assert_eq!(
        (recovery.inliers_bv(), recovery.inliers_box()),
        (25, 24),
        "inlier diagnostics drifted from the golden snapshot"
    );
}

#[test]
fn recovery_beats_corrupted_gps_on_average() {
    let noise = PoseNoise::table1();
    let mut rng = StdRng::seed_from_u64(55);
    let mut rec_total = 0.0;
    let mut gps_total = 0.0;
    let mut n = 0;
    for seed in 0..3u64 {
        if let Some((dt, _, recovery, pair)) =
            recover_pair(DatasetConfig::test_small(), seed, 7 + seed)
        {
            // Deployment semantics: only confident recoveries replace the
            // GPS pose (low-confidence ones keep it, so they tie, not lose).
            if !recovery.is_success() {
                continue;
            }
            let corrupted = noise.corrupt(&pair.true_relative, &mut rng);
            let (gdt, _) = corrupted.error_to(&pair.true_relative);
            rec_total += dt;
            gps_total += gdt;
            n += 1;
        }
    }
    assert!(n >= 2, "not enough confident recoveries, got {n}");
    assert!(
        rec_total < gps_total,
        "recovered errors ({rec_total:.2}) should beat σ=2 m GPS noise ({gps_total:.2}) over {n} pairs"
    );
}

#[test]
fn oncoming_traffic_geometry_is_recovered() {
    // Opposite heading: relative yaw ≈ 180°, exercising the rotation
    // hypothesis sweep end-to-end.
    let mut cfg = DatasetConfig::test_small();
    cfg.scenario = ScenarioConfig::preset(ScenarioPreset::Urban);
    cfg.scenario.agent_heading = AgentHeading::Opposite;
    cfg.scenario.agent_separation = 30.0;

    let mut solved = 0;
    for seed in 0..3u64 {
        if let Some((dt, dr, _, pair)) = recover_pair(cfg.clone(), seed, 31 + seed) {
            assert!(
                (pair.true_relative.yaw().abs() - std::f64::consts::PI).abs() < 0.1,
                "scenario should be oncoming"
            );
            if dt < 4.0 && dr.to_degrees() < 8.0 {
                solved += 1;
            }
        }
    }
    assert!(solved >= 1, "no oncoming pair recovered accurately");
}

#[test]
fn open_rural_scenes_mostly_fail_gracefully() {
    // The paper's failure regime: featureless open areas. Failures must be
    // *reported*, not silently wrong: any recovery marked success=true
    // must actually be accurate-ish.
    let mut cfg = DatasetConfig::test_small();
    cfg.scenario = ScenarioConfig::preset(ScenarioPreset::OpenRural);
    cfg.scenario.traffic_count = 0;
    let mut confident_but_wrong = 0;
    for seed in 0..3u64 {
        if let Some((dt, _, recovery, _)) = recover_pair(cfg.clone(), seed, 77 + seed) {
            if recovery.is_success() && dt > 10.0 {
                confident_but_wrong += 1;
            }
        }
    }
    assert_eq!(
        confident_but_wrong, 0,
        "success criterion passed on grossly wrong open-rural recoveries"
    );
}

#[test]
fn transmitted_payload_is_much_smaller_than_raw_cloud() {
    let aligner = BbAlign::new(fast_engine());
    let mut ds = Dataset::new(DatasetConfig::test_small(), 3);
    let pair = ds.next_pair().unwrap();
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let raw = pair.other.scan.wire_size_bytes();
    let payload = other.wire_size_bytes();
    assert!(
        payload * 4 < raw,
        "BB-Align payload ({payload} B) should be well under raw cloud ({raw} B)"
    );
}

/// One observability recorder across the whole cooperative loop: an
/// obs-enabled end-to-end run must emit the full health record — stage-1
/// phase spans nested under the recovery span, the stage-2 span, inlier
/// gauges, link/fusion/harness counters — and the snapshot's JSON export
/// must be strict enough for the workspace parser to read back.
#[test]
fn observed_link_run_emits_full_metrics_snapshot() {
    // A fast engine for 128² BV images (mirrors the link crate's own test
    // pool: coarser cells, softer inlier floor, smaller descriptors).
    let mut engine = BbAlignConfig {
        bev: BevConfig { range: 102.4, resolution: 1.6 },
        min_inliers_bv: 10,
        ..BbAlignConfig::default()
    };
    engine.descriptor.patch_size = 24;
    engine.descriptor.grid_size = 4;

    let recorder = Recorder::enabled();
    let cfg = HarnessConfig {
        frames: 3,
        seed: 41,
        dataset: DatasetConfig::test_small(),
        engine,
        channel: ChannelConfig::ideal(),
        recorder: recorder.clone(),
        ..HarnessConfig::default()
    };
    let report = V2vHarness::new(cfg).run();
    assert!((report.delivered_rate() - 1.0).abs() < 1e-12, "ideal channel must deliver");
    assert!(report.recovered_rate() > 0.5, "most frames should recover");

    let snap = recorder.snapshot();
    for path in [
        "recover",
        "recover/stage1",
        "recover/stage1/mim",
        "recover/stage1/detect",
        "recover/stage1/describe",
        "recover/stage1/match",
        "recover/stage1/ransac",
        "recover/stage2",
        "fusion",
    ] {
        assert!(snap.span(path).is_some(), "missing span {path}");
    }
    assert!(snap.gauge("stage1.inliers_bv").is_some(), "missing inlier gauge");
    assert!(snap.value("stage1.inliers_bv").is_some(), "missing inlier histogram");
    assert!(snap.counter("recover.calls").unwrap_or(0) >= 1);
    assert!(snap.counter("link.messages_sent").unwrap_or(0) >= 3);
    assert!(snap.counter("link.messages_delivered").unwrap_or(0) >= 3);
    assert_eq!(snap.counter("harness.ticks"), Some(3));
    assert_eq!(snap.counter("fusion.frames"), Some(3));

    let parsed: serde_json::Value =
        serde_json::from_str(&snap.to_json()).expect("snapshot JSON must parse");
    let serde_json::Value::Map(sections) = parsed else {
        panic!("snapshot JSON should be an object");
    };
    let keys: Vec<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["counters", "gauges", "spans", "values"]);
}

#[test]
fn dataset_selection_statistics_are_plausible() {
    // The paper keeps ~60% of frames (≥2 common cars). Urban scenes should
    // be selected nearly always, rural rarely.
    let count_selected = |preset: ScenarioPreset| -> usize {
        let mut cfg = DatasetConfig::test_small();
        cfg.scenario = ScenarioConfig::preset(preset);
        let mut selected = 0;
        for seed in 0..3u64 {
            let mut ds = Dataset::new(cfg.clone(), seed);
            if ds.next_pair().unwrap().is_selected() {
                selected += 1;
            }
        }
        selected
    };
    let urban = count_selected(ScenarioPreset::Urban);
    let rural = count_selected(ScenarioPreset::OpenRural);
    assert!(urban >= 2, "urban selection too low: {urban}/3");
    assert!(rural <= urban, "rural should not out-select urban");
}

//! Integration tests for the simulated V2V transport (`bba-link`): the
//! cooperative loop over a perfect link must reproduce the direct-call
//! pipeline exactly, and over a badly lossy link it must complete every
//! frame by degrading to ego-only perception and tracked pose
//! extrapolation instead of stalling.

use bb_align::wire::{decode_frame, encode_frame};
use bb_align::{BbAlign, BbAlignConfig};
use bba_bev::BevConfig;
use bba_dataset::{Dataset, DatasetConfig};
use bba_link::harness::{perception_frame, recovery_rng};
use bba_link::{ChannelConfig, HarnessConfig, PoseSource, V2vHarness};

/// The fast engine used by bench tests: coarse 128² raster.
fn fast_engine() -> BbAlignConfig {
    let mut engine = BbAlignConfig {
        bev: BevConfig { range: 102.4, resolution: 1.6 },
        min_inliers_bv: 10,
        ..BbAlignConfig::default()
    };
    engine.descriptor.patch_size = 24;
    engine.descriptor.grid_size = 4;
    engine
}

fn harness_config(frames: usize, seed: u64) -> HarnessConfig {
    HarnessConfig {
        frames,
        seed,
        dataset: DatasetConfig::test_small(),
        engine: fast_engine(),
        ..HarnessConfig::default()
    }
}

#[test]
fn lossless_loop_reproduces_direct_pipeline_exactly() {
    let seed = 77;
    let frames = 3;
    let mut cfg = harness_config(frames, seed);
    cfg.channel = ChannelConfig::ideal();
    let report = V2vHarness::new(cfg).run();
    assert_eq!(report.outcomes.len(), frames);

    // The direct-call pipeline: same dataset, same per-frame RNG, frames
    // shipped through the serialiser only (no link in between).
    let aligner = BbAlign::new(fast_engine());
    let mut dataset = Dataset::new(DatasetConfig::test_small(), seed);
    let mut recovered = 0;
    for (k, outcome) in report.outcomes.iter().enumerate() {
        let pair = dataset.next_pair().unwrap();
        let ego = perception_frame(&aligner, &pair.ego);
        let other = perception_frame(&aligner, &pair.other);
        let shipped = decode_frame(&encode_frame(&other)).expect("serialiser round-trips");
        let mut rng = recovery_rng(seed, k);
        let direct = aligner.recover(&ego, &shipped, &mut rng).ok();

        assert!(outcome.delivered, "ideal channel must deliver frame {k}");
        assert!(outcome.cooperative);
        match direct {
            Some(r) => {
                assert_eq!(outcome.pose_source, PoseSource::Recovered, "frame {k}");
                // Bit-exact: same bytes in, same RNG, same transform out.
                assert_eq!(outcome.pose, Some(r.transform), "frame {k} pose diverged");
                recovered += 1;
            }
            None => assert_ne!(outcome.pose_source, PoseSource::Recovered, "frame {k}"),
        }
    }
    assert!(recovered > 0, "expected at least one successful recovery in the pool");
}

#[test]
fn thirty_percent_loss_still_completes_every_frame() {
    let frames = 8;
    let mut cfg = harness_config(frames, 51);
    cfg.channel = ChannelConfig::urban().with_loss(0.3);
    // With the full retry budget the session layer rides out 30% loss on
    // almost every frame; cap it at one retransmit so outages actually
    // occur within a short test run and the fallback path is exercised.
    cfg.session.max_attempts = 2;
    let report = V2vHarness::new(cfg).run();

    // The loop never stalls: one outcome per tick, each with a perception
    // result (cooperative or ego-only) regardless of what the link did.
    assert_eq!(report.outcomes.len(), frames);
    let mut dropped = 0;
    for o in &report.outcomes {
        if !o.delivered {
            dropped += 1;
            assert!(!o.cooperative, "tick {}: nothing arrived, nothing to fuse", o.index);
            assert_ne!(o.pose_source, PoseSource::Recovered, "tick {}", o.index);
            // Ego-only perception still ran — and once the tracker has a
            // track, the pose estimate survives the outage.
            if o.pose_source == PoseSource::Extrapolated {
                assert!(o.pose.is_some());
            }
        }
    }
    assert!(report.delivered_rate() > 0.0, "retransmission should get some frames through");
    assert!(
        dropped > 0,
        "at 30% datagram loss some frame should miss its deadline (tune the seed if not)"
    );
    // The degradation chain was actually exercised: every dropped tick
    // still produced detections or an empty ego-only result without
    // panicking, and at least one tick had a pose despite the drop.
    let extrapolated = report
        .outcomes
        .iter()
        .filter(|o| o.pose_source == PoseSource::Extrapolated && o.pose.is_some())
        .count();
    assert!(extrapolated > 0, "tracking-based extrapolation should cover at least one outage tick");
}

#[test]
fn link_states_progress_from_discovering() {
    let mut cfg = harness_config(4, 11);
    cfg.channel = ChannelConfig::ideal();
    let report = V2vHarness::new(cfg).run();
    use bba_link::PeerState;
    // Once frames flow, the receiver reports a synced peer.
    assert!(report.outcomes.iter().any(|o| o.link_state == PeerState::Synced));
}

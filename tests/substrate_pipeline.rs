//! Integration tests across the substrate crates: scene → lidar → bev →
//! signal → features, plus serialization round-trips of the data types
//! that cross crate boundaries.

use bba_bev::{BevConfig, BevImage};
use bba_dataset::{Dataset, DatasetConfig};
use bba_geometry::{Iso2, Vec2};
use bba_lidar::{LidarConfig, Scanner};
use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset};
use bba_signal::{LogGaborConfig, MaxIndexMap};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scan_scenario(preset: ScenarioPreset, seed: u64) -> (Scenario, bba_lidar::Scan) {
    let scenario = Scenario::generate(&ScenarioConfig::preset(preset), seed);
    let scanner = Scanner::new(LidarConfig::test_coarse());
    let mut rng = StdRng::seed_from_u64(seed);
    let scan =
        scanner.scan(scenario.world(), scenario.ego_trajectory(), 0.0, scenario.ego_id(), &mut rng);
    (scenario, scan)
}

#[test]
fn scan_points_stay_within_sensor_range() {
    let (_, scan) = scan_scenario(ScenarioPreset::Suburban, 1);
    let max_range = scan.config().max_range;
    for p in scan.points() {
        // Range noise can push a return slightly beyond the nominal limit.
        assert!(p.position.xy().norm() <= max_range + 1.0);
        assert!(p.position.z >= -0.5, "returns below ground: {:?}", p.position);
        assert!((0.0..1.0).contains(&p.sweep_frac));
    }
}

#[test]
fn taller_obstacles_make_taller_bev_pixels() {
    let (scenario, scan) = scan_scenario(ScenarioPreset::Urban, 2);
    let cfg = BevConfig { range: 102.4, resolution: 0.8 };
    let bev = BevImage::height_map(scan.points().iter().map(|p| p.position), &cfg);
    // Building hits should produce pixels well above car height somewhere.
    assert!(
        bev.grid().max_value() > 3.0,
        "urban scene should rasterise tall structure, max {}",
        bev.grid().max_value()
    );
    // The image is sparse — the defining property stage 1 must cope with.
    assert!(bev.occupancy() < 0.25, "BV image unexpectedly dense: {}", bev.occupancy());
    let _ = scenario;
}

#[test]
fn mim_marks_structure_not_emptiness() {
    let (_, scan) = scan_scenario(ScenarioPreset::Urban, 3);
    let cfg = BevConfig { range: 102.4, resolution: 1.6 }; // 128² for speed
    let bev = BevImage::height_map(scan.points().iter().map(|p| p.position), &cfg);
    let mim = MaxIndexMap::compute(bev.grid(), &LogGaborConfig::default());
    // Amplitude concentrates around occupied pixels: mean amplitude at
    // occupied cells far exceeds the global mean.
    let mut occ_amp = 0.0;
    let mut occ_n = 0usize;
    for (u, v, &h) in bev.grid().iter_cells() {
        if h > 1e-9 {
            occ_amp += mim.amplitude[(u, v)];
            occ_n += 1;
        }
    }
    let occ_mean = occ_amp / occ_n.max(1) as f64;
    let global_mean = mim.amplitude.mean();
    assert!(
        occ_mean > 2.0 * global_mean,
        "MIM amplitude should localise structure ({occ_mean} vs {global_mean})"
    );
}

#[test]
fn both_cars_rasterise_consistent_world_structure() {
    // Transform the other car's BV-occupied cells into the ego frame with
    // ground truth: a healthy fraction must land on ego-occupied cells
    // (this is the physical basis for BV image matching).
    let mut ds = Dataset::new(DatasetConfig::test_small(), 4);
    let pair = ds.next_pair().unwrap();
    let cfg = BevConfig { range: 102.4, resolution: 1.6 };
    let ego = BevImage::height_map(pair.ego.scan.points().iter().map(|p| p.position), &cfg);
    let other = BevImage::height_map(pair.other.scan.points().iter().map(|p| p.position), &cfg);

    let mut occupied = 0usize;
    let mut shared = 0usize;
    for (u, v, &h) in other.grid().iter_cells() {
        if h <= 1e-9 {
            continue;
        }
        occupied += 1;
        let world = pair.true_relative.apply(cfg.pixel_center(u, v));
        if let Some((eu, ev)) = cfg.world_to_pixel(world) {
            let hit = (-1i64..=1).any(|du| {
                (-1i64..=1).any(|dv| {
                    ego.grid()
                        .get((eu as i64 + du).max(0) as usize, (ev as i64 + dv).max(0) as usize)
                        .is_some_and(|&x| x > 1e-9)
                })
            });
            if hit {
                shared += 1;
            }
        }
    }
    let frac = shared as f64 / occupied.max(1) as f64;
    assert!(frac > 0.2, "too little co-visible BV structure: {frac:.2}");
}

#[test]
fn detections_follow_scan_evidence() {
    let mut ds = Dataset::new(DatasetConfig::test_small(), 5);
    let pair = ds.next_pair().unwrap();
    // Every true-positive detection corresponds to an object the scan hit.
    for det in &pair.ego.detections {
        if let Some(id) = det.truth {
            assert!(pair.ego.scan.hits_on(id) >= 3, "detection of {id} without scan evidence");
        }
    }
}

#[test]
fn frame_pair_serializes_roundtrip() {
    let mut ds = Dataset::new(DatasetConfig::test_small(), 6);
    let pair = ds.next_pair().unwrap();
    let json = serde_json::to_string(&pair).expect("serialize");
    let back: bba_dataset::FramePair = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(pair, back);
}

#[test]
fn transforms_serialize_roundtrip() {
    let t = Iso2::new(0.7, Vec2::new(-3.0, 9.5));
    let json = serde_json::to_string(&t).unwrap();
    let back: Iso2 = serde_json::from_str(&json).unwrap();
    assert!(back.approx_eq(&t, 1e-12, 1e-12));
}

#[test]
fn heterogeneous_sensors_see_the_same_objects() {
    // A 64-channel and a 16-channel sensor at the same pose must agree on
    // *which* nearby objects exist, even though point counts differ a lot.
    let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Urban), 7);
    let mut rng = StdRng::seed_from_u64(7);
    let hi = Scanner::new(LidarConfig::high_res_64()).scan(
        scenario.world(),
        scenario.ego_trajectory(),
        0.0,
        scenario.ego_id(),
        &mut rng,
    );
    let mut rng = StdRng::seed_from_u64(7);
    let lo = Scanner::new(LidarConfig::low_res_16()).scan(
        scenario.world(),
        scenario.ego_trajectory(),
        0.0,
        scenario.ego_id(),
        &mut rng,
    );
    assert!(hi.len() > 2 * lo.len(), "64ch should return far more points");
    // Objects solidly observed by the low-res sensor are also seen hi-res.
    for (id, _) in scenario.world().vehicles_at(0.0, Some(scenario.ego_id())) {
        if lo.hits_on(id) >= 10 {
            assert!(hi.hits_on(id) >= 10, "{id} visible lo-res but not hi-res");
        }
    }
}

//! Fleet-scale integration: an N-vehicle platoon served through
//! `bba-serve`, chained into a cycle-consistent pose graph.
//!
//! This is the workspace-level proof of the serving layer's contract:
//! real scans, real recoveries, many concurrent sessions — and the
//! 3-cycle composition check that only exists once pairwise recoveries
//! are chained across a fleet.

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame};
use bba_bev::BevConfig;
use bba_dataset::{AgentFrame, FleetDataset, FleetDatasetConfig};
use bba_geometry::{Iso2, Vec2};
use bba_obs::Recorder;
use bba_serve::{
    AdmitOutcome, FleetPoseGraph, FrameSubmission, PairId, PoseService, ServiceConfig,
    SessionConfig,
};
use std::sync::Arc;

/// The bench/link-harness fast configuration: 128² BV images, reduced
/// descriptor patch, lowered stage-1 threshold. Recovers reliably on
/// urban test scenes at a fraction of the production cost.
fn fast_engine() -> BbAlignConfig {
    let mut engine = BbAlignConfig {
        bev: BevConfig { range: 102.4, resolution: 1.6 }, // 128²
        min_inliers_bv: 10,
        ..BbAlignConfig::default()
    };
    engine.descriptor.patch_size = 24;
    engine.descriptor.grid_size = 4;
    engine
}

fn perception(engine: &BbAlign, agent: &AgentFrame) -> Arc<PerceptionFrame> {
    Arc::new(engine.frame_from_parts(
        agent.scan.points().iter().map(|p| p.position),
        agent.detections.iter().map(|d| (d.box3, d.confidence)),
    ))
}

/// The session pairs served over a 5-car platoon: adjacent plus
/// skip-one, giving the graph its 3-cycles.
const PLATOON_PAIRS: [(u32, u32); 7] = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 3), (2, 4)];

#[test]
fn five_vehicle_platoon_yields_a_cycle_consistent_pose_graph() {
    let mut cfg = FleetDatasetConfig::test_small(5);
    // A tight platoon: 20 m gaps so skip-one pairs sit at 40 m, well
    // inside the engine's matching range.
    cfg.fleet.spacing = 20.0;
    cfg.fleet.scenario.agent_separation = 20.0;
    let mut ds = FleetDataset::new(cfg, 1);
    let frame = ds.next_frame();

    let engine = Arc::new(BbAlign::new(fast_engine()));
    let obs = Recorder::enabled();
    let service =
        PoseService::new(Arc::clone(&engine), ServiceConfig::default()).with_recorder(obs.clone());
    let frames: Vec<Arc<PerceptionFrame>> =
        frame.agents.iter().map(|a| perception(&engine, a)).collect();

    for &(i, j) in &PLATOON_PAIRS {
        let outcome = service.submit(
            PairId::new(i, j),
            FrameSubmission {
                seq: 0,
                timestamp: frame.time,
                ego: Arc::clone(&frames[i as usize]),
                other: Arc::clone(&frames[j as usize]),
            },
            frame.time,
        );
        assert_eq!(outcome, AdmitOutcome::Admitted);
    }
    let outcomes = service.process_batch(frame.time + 0.05);
    assert_eq!(outcomes.len(), PLATOON_PAIRS.len());

    // Chain successful recoveries into the fleet graph, gated on stage-2
    // consensus: a recovery whose box refinement found zero inlier pairs
    // is an unrefined stage-1 estimate and (empirically) where aliased
    // matches hide on repetitive along-road structure.
    let mut graph = FleetPoseGraph::new(5);
    let mut recovered = 0;
    for outcome in &outcomes {
        if let Ok(recovery) = &outcome.result {
            if recovery.inliers_box() == 0 {
                continue;
            }
            let weight = (recovery.inliers_bv() + recovery.inliers_box()) as f64;
            graph.add_recovery(outcome.pair, recovery.transform, weight);
            recovered += 1;
            // Every accepted edge must be close to the fleet ground
            // truth — serving is orchestration, not new numerics.
            let truth = ds.fleet().relative_pose(
                outcome.pair.receiver as usize,
                outcome.pair.sender as usize,
                frame.time,
            );
            let (dt, dr) = recovery.transform.error_to(&truth);
            assert!(
                dt < 3.5 && dr.to_degrees() < 6.0,
                "pair {:?}: edge error {dt:.2} m / {:.2}°",
                outcome.pair,
                dr.to_degrees()
            );
        }
    }
    assert!(recovered >= 5, "only {recovered}/7 platoon pairs recovered");

    // The acceptance check: 3-cycles must compose to ≈ identity.
    let (max_t, max_r) = graph
        .max_cycle_error()
        .expect("the platoon graph must contain at least one complete 3-cycle");
    assert!(
        max_t < 4.5 && max_r.to_degrees() < 8.0,
        "worst 3-cycle composition error {max_t:.2} m / {:.2}° exceeds threshold",
        max_r.to_degrees()
    );

    // Reconciliation on the healthy graph excludes nothing.
    let report = graph.clone().reconcile(4.5, 8f64.to_radians());
    assert!(report.excluded.is_empty(), "healthy graph lost edges: {:?}", report.excluded);

    // Now corrupt one edge the way a surviving alias would (low weight,
    // wrong transform) and demand reconciliation finds exactly it. Edge
    // (2,3) sits in the (2,3,4) cycle, so the corruption is observable.
    let mut corrupted = graph.clone();
    let truth_23 = ds.fleet().relative_pose(2, 3, frame.time);
    corrupted.add_edge(2, 3, truth_23.compose(&Iso2::new(0.4, Vec2::new(6.0, -3.0))), 5.0);
    let report = corrupted.reconcile(4.5, 8f64.to_radians());
    assert_eq!(report.excluded, vec![(2, 3)], "reconcile should excise the corrupted edge");
    // The fleet stays connected without it.
    let poses = corrupted.absolute_poses(0);
    let reachable = poses.iter().filter(|p| p.is_some()).count();
    assert_eq!(reachable, 5, "exclusion must not disconnect the platoon");

    // Shed accounting and conservation hold service-wide.
    let stats = service.stats();
    assert!(stats.is_conserved(), "service accounting violated: {stats:?}");
    let metrics = obs.snapshot();
    assert_eq!(metrics.counter("serve.processed"), Some(PLATOON_PAIRS.len() as u64));
    assert!(metrics.value("serve.recovery_ms").is_some(), "latency histogram missing");
}

#[test]
fn service_multiplexes_64_sessions_without_blocking_and_accounts_for_all_sheds() {
    // A deliberately tiny raster: this test exercises orchestration at
    // fleet scale (64 sessions, adversarial traffic), not matching
    // quality, so recoveries may fail fast.
    let mut cfg = BbAlignConfig::test_small();
    cfg.bev = BevConfig { range: 25.6, resolution: 1.6 }; // 32²
    cfg.descriptor.patch_size = 12;
    cfg.descriptor.grid_size = 4;
    let engine = Arc::new(BbAlign::new(cfg));
    let obs = Recorder::enabled();
    let service = PoseService::new(
        Arc::clone(&engine),
        ServiceConfig {
            session: SessionConfig { queue_capacity: 2, staleness: 0.5 },
            shards: 8,
            max_batch_per_session: 1,
            seed: 3,
            ..Default::default()
        },
    )
    .with_recorder(obs.clone());
    let frame = Arc::new(engine.frame_from_parts(std::iter::empty(), std::iter::empty()));

    let submission = |seq: u64, timestamp: f64| FrameSubmission {
        seq,
        timestamp,
        ego: Arc::clone(&frame),
        other: Arc::clone(&frame),
    };

    // 64 concurrent sessions: 8 receivers × 8 senders (minus self-pairs)
    // plus extras to cross 64.
    let mut pairs = Vec::new();
    for receiver in 0..9u32 {
        for sender in 0..9u32 {
            if receiver != sender && pairs.len() < 64 {
                pairs.push(PairId::new(receiver, sender));
            }
        }
    }
    assert_eq!(pairs.len(), 64);

    let mut submitted = 0u64;
    for round in 0..3u64 {
        let now = round as f64 * 0.1;
        for (k, &pair) in pairs.iter().enumerate() {
            // Fresh frame for every session...
            service.submit(pair, submission(round, now), now);
            submitted += 1;
            // ...plus adversarial traffic on a rotating subset: a
            // duplicate, and a stale frame from the distant past.
            if k % 4 == 0 {
                service.submit(pair, submission(round, now), now);
                service.submit(pair, submission(round + 100, now - 10.0), now);
                submitted += 2;
            }
        }
        let outcomes = service.process_batch(now + 0.01);
        assert!(!outcomes.is_empty());
    }

    let stats = service.stats();
    assert_eq!(stats.sessions, 64, "all 64 sessions must stay live");
    assert_eq!(stats.submitted, submitted);
    // Zero blocked sends is structural — every submit returned — and the
    // ledger proves nothing vanished: processed + shed + queued covers
    // every submission exactly.
    assert!(stats.is_conserved(), "conservation violated: {stats:?}");
    assert!(stats.shed_duplicate > 0 && stats.shed_stale > 0, "adversarial sheds must register");

    let snap = obs.snapshot();
    assert_eq!(snap.counter("serve.submitted"), Some(submitted));
    let shed_in_metrics = snap.counter("serve.shed_stale").unwrap_or(0)
        + snap.counter("serve.shed_duplicate").unwrap_or(0)
        + snap.counter("serve.shed_superseded").unwrap_or(0)
        + snap.counter("serve.shed_overflow").unwrap_or(0);
    assert_eq!(shed_in_metrics, stats.shed_total(), "metrics and ledger must agree on sheds");
    assert_eq!(snap.gauge("serve.sessions"), Some(64.0));
    let hist = snap.value("serve.recovery_ms").expect("recovery latency histogram");
    assert!(hist.p99().is_some(), "p99 must be derivable from the histogram");
}

#[test]
fn batched_service_recovery_is_deterministic_across_thread_counts() {
    let run = |threads: usize| {
        let mut cfg = FleetDatasetConfig::test_small(3);
        cfg.fleet.spacing = 20.0;
        cfg.fleet.scenario.agent_separation = 20.0;
        let mut ds = FleetDataset::new(cfg, 2);
        let frame = ds.next_frame();
        let engine = Arc::new(BbAlign::new(fast_engine()));
        let service = PoseService::new(Arc::clone(&engine), ServiceConfig::default());
        let frames: Vec<Arc<PerceptionFrame>> =
            frame.agents.iter().map(|a| perception(&engine, a)).collect();
        for &(i, j) in &[(0u32, 1u32), (1, 2), (0, 2)] {
            service.submit(
                PairId::new(i, j),
                FrameSubmission {
                    seq: 0,
                    timestamp: frame.time,
                    ego: Arc::clone(&frames[i as usize]),
                    other: Arc::clone(&frames[j as usize]),
                },
                frame.time,
            );
        }
        let outcomes = bba_par::with_threads(threads, || service.process_batch(frame.time));
        outcomes.into_iter().map(|o| (o.pair, o.result.map(|r| r.transform))).collect::<Vec<_>>()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "recovery must be bit-identical at any thread count");
}

//! Failure-injection tests: the system must degrade loudly and safely, not
//! silently, when sensors or scenes break.

use bb_align::{BbAlign, BbAlignConfig, RecoverError};
use bba_dataset::{Dataset, DatasetConfig};
use bba_detect::{Detector, DetectorModel};
use bba_geometry::Vec2;
use bba_lidar::{LidarConfig, Scanner};
use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset, Trajectory, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine() -> BbAlign {
    BbAlign::new(BbAlignConfig::default())
}

#[test]
fn total_sensor_outage_reports_no_keypoints() {
    // A sensor with 100 % dropout returns an empty scan; recovery must
    // fail with a diagnosable error, not panic or hallucinate a pose.
    let mut cfg = LidarConfig::test_coarse();
    cfg.dropout_prob = 1.0;
    let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Urban), 1);
    let mut rng = StdRng::seed_from_u64(1);
    let scan = Scanner::new(cfg).scan(
        scenario.world(),
        scenario.ego_trajectory(),
        0.0,
        scenario.ego_id(),
        &mut rng,
    );
    assert!(scan.is_empty());

    let aligner = engine();
    let dead =
        aligner.frame_from_parts(scan.points().iter().map(|p| p.position), std::iter::empty());
    let err = aligner.recover(&dead, &dead, &mut rng).unwrap_err();
    assert!(matches!(err, RecoverError::NoKeypoints { .. }), "got {err}");
}

#[test]
fn empty_world_scan_produces_only_ground() {
    // Nothing but ground plane: detector returns at most false positives,
    // and the BV height map is empty (ground rasterises to zero).
    let world = World::default();
    let traj = Trajectory::straight(Vec2::ZERO, 0.0, 10.0);
    let scanner = Scanner::new(LidarConfig::test_coarse());
    let mut rng = StdRng::seed_from_u64(2);
    let scan = scanner.scan(&world, &traj, 0.0, bba_scene::ObstacleId(0), &mut rng);
    assert!(scan.points().iter().all(|p| p.target.is_none()));

    let aligner = engine();
    let frame =
        aligner.frame_from_parts(scan.points().iter().map(|p| p.position), std::iter::empty());
    assert_eq!(frame.bev().occupancy(), 0.0, "ground must not rasterise");
}

#[test]
fn extreme_range_noise_degrades_but_does_not_crash() {
    let mut lidar = LidarConfig::test_coarse();
    lidar.range_noise_sigma = 2.0; // 2 m range noise: hopeless data
    let mut dcfg = DatasetConfig::test_small();
    dcfg.ego_lidar = lidar.clone();
    dcfg.other_lidar = lidar;
    let mut ds = Dataset::new(dcfg, 3);
    let pair = ds.next_pair().unwrap();
    let aligner = engine();
    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let mut rng = StdRng::seed_from_u64(3);
    // Whatever happens, a *confident* answer must not be grossly wrong.
    if let Ok(r) = aligner.recover(&ego, &other, &mut rng) {
        let (dt, _) = r.transform.error_to(&pair.true_relative);
        assert!(
            !r.is_success() || dt < 10.0,
            "confident recovery with {dt:.1} m error under 2 m range noise"
        );
    }
}

#[test]
fn detector_on_empty_scan_yields_only_false_positives() {
    let world = World::default();
    let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
    let scanner = Scanner::new(LidarConfig::test_coarse());
    let mut rng = StdRng::seed_from_u64(4);
    let scan = scanner.scan(&world, &traj, 0.0, bba_scene::ObstacleId(0), &mut rng);
    let dets = Detector::new(DetectorModel::CoBevt).detect(
        &scan,
        &world,
        &traj,
        bba_scene::ObstacleId(0),
        &mut rng,
    );
    assert!(dets.iter().all(|d| d.truth.is_none()), "phantom true positives");
}

#[test]
fn stage2_with_zero_boxes_falls_back_to_stage1() {
    let mut ds = Dataset::new(DatasetConfig::test_small(), 5);
    let pair = ds.next_pair().unwrap();
    let aligner = engine();
    // Strip every detection: stage 2 cannot run.
    let ego = aligner
        .frame_from_parts(pair.ego.scan.points().iter().map(|p| p.position), std::iter::empty());
    let other = aligner
        .frame_from_parts(pair.other.scan.points().iter().map(|p| p.position), std::iter::empty());
    let mut rng = StdRng::seed_from_u64(5);
    if let Ok(r) = aligner.recover(&ego, &other, &mut rng) {
        assert!(r.box_alignment.is_none());
        assert_eq!(r.inliers_box(), 0);
        assert!(!r.is_success(), "success criterion requires stage-2 inliers");
        assert_eq!(r.transform, r.bv.transform, "must fall back to stage 1");
    }
}

#[test]
fn mismatched_wire_payload_is_rejected_cleanly() {
    let mut ds = Dataset::new(DatasetConfig::test_small(), 6);
    let pair = ds.next_pair().unwrap();
    let aligner = engine();
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let mut bytes = bb_align::encode_frame(&other);
    // Corrupt the cell count upward: decode must not panic or over-read.
    bytes[20] = 0xFF;
    bytes[21] = 0xFF;
    assert!(bb_align::decode_frame(&bytes).is_err());
}

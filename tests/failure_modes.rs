//! Failure-injection tests: the system must degrade loudly and safely, not
//! silently, when sensors or scenes break.

use bb_align::{BbAlign, BbAlignConfig, RecoverError};
use bba_dataset::{Dataset, DatasetConfig};
use bba_detect::{Detector, DetectorModel};
use bba_features::{ransac_rigid_guided, ransac_rigid_naive, RansacConfig, RansacError};
use bba_geometry::Vec2;
use bba_lidar::{LidarConfig, Scanner};
use bba_scene::{Scenario, ScenarioConfig, ScenarioPreset, Trajectory, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine() -> BbAlign {
    BbAlign::new(BbAlignConfig::default())
}

#[test]
fn total_sensor_outage_reports_no_keypoints() {
    // A sensor with 100 % dropout returns an empty scan; recovery must
    // fail with a diagnosable error, not panic or hallucinate a pose.
    let mut cfg = LidarConfig::test_coarse();
    cfg.dropout_prob = 1.0;
    let scenario = Scenario::generate(&ScenarioConfig::preset(ScenarioPreset::Urban), 1);
    let mut rng = StdRng::seed_from_u64(1);
    let scan = Scanner::new(cfg).scan(
        scenario.world(),
        scenario.ego_trajectory(),
        0.0,
        scenario.ego_id(),
        &mut rng,
    );
    assert!(scan.is_empty());

    let aligner = engine();
    let dead =
        aligner.frame_from_parts(scan.points().iter().map(|p| p.position), std::iter::empty());
    let err = aligner.recover(&dead, &dead, &mut rng).unwrap_err();
    assert!(matches!(err, RecoverError::NoKeypoints { .. }), "got {err}");
}

#[test]
fn empty_world_scan_produces_only_ground() {
    // Nothing but ground plane: detector returns at most false positives,
    // and the BV height map is empty (ground rasterises to zero).
    let world = World::default();
    let traj = Trajectory::straight(Vec2::ZERO, 0.0, 10.0);
    let scanner = Scanner::new(LidarConfig::test_coarse());
    let mut rng = StdRng::seed_from_u64(2);
    let scan = scanner.scan(&world, &traj, 0.0, bba_scene::ObstacleId(0), &mut rng);
    assert!(scan.points().iter().all(|p| p.target.is_none()));

    let aligner = engine();
    let frame =
        aligner.frame_from_parts(scan.points().iter().map(|p| p.position), std::iter::empty());
    assert_eq!(frame.bev().occupancy(), 0.0, "ground must not rasterise");
}

#[test]
fn extreme_range_noise_degrades_but_does_not_crash() {
    let mut lidar = LidarConfig::test_coarse();
    lidar.range_noise_sigma = 2.0; // 2 m range noise: hopeless data
    let mut dcfg = DatasetConfig::test_small();
    dcfg.ego_lidar = lidar.clone();
    dcfg.other_lidar = lidar;
    let mut ds = Dataset::new(dcfg, 3);
    let pair = ds.next_pair().unwrap();
    let aligner = engine();
    let ego = aligner.frame_from_parts(
        pair.ego.scan.points().iter().map(|p| p.position),
        pair.ego.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let mut rng = StdRng::seed_from_u64(3);
    // Whatever happens, a *confident* answer must not be grossly wrong.
    if let Ok(r) = aligner.recover(&ego, &other, &mut rng) {
        let (dt, _) = r.transform.error_to(&pair.true_relative);
        assert!(
            !r.is_success() || dt < 10.0,
            "confident recovery with {dt:.1} m error under 2 m range noise"
        );
    }
}

#[test]
fn detector_on_empty_scan_yields_only_false_positives() {
    let world = World::default();
    let traj = Trajectory::stationary(Vec2::ZERO, 0.0);
    let scanner = Scanner::new(LidarConfig::test_coarse());
    let mut rng = StdRng::seed_from_u64(4);
    let scan = scanner.scan(&world, &traj, 0.0, bba_scene::ObstacleId(0), &mut rng);
    let dets = Detector::new(DetectorModel::CoBevt).detect(
        &scan,
        &world,
        &traj,
        bba_scene::ObstacleId(0),
        &mut rng,
    );
    assert!(dets.iter().all(|d| d.truth.is_none()), "phantom true positives");
}

#[test]
fn stage2_with_zero_boxes_falls_back_to_stage1() {
    let mut ds = Dataset::new(DatasetConfig::test_small(), 5);
    let pair = ds.next_pair().unwrap();
    let aligner = engine();
    // Strip every detection: stage 2 cannot run.
    let ego = aligner
        .frame_from_parts(pair.ego.scan.points().iter().map(|p| p.position), std::iter::empty());
    let other = aligner
        .frame_from_parts(pair.other.scan.points().iter().map(|p| p.position), std::iter::empty());
    let mut rng = StdRng::seed_from_u64(5);
    if let Ok(r) = aligner.recover(&ego, &other, &mut rng) {
        assert!(r.box_alignment.is_none());
        assert_eq!(r.inliers_box(), 0);
        assert!(!r.is_success(), "success criterion requires stage-2 inliers");
        assert_eq!(r.transform, r.bv.transform, "must fall back to stage 1");
    }
}

/// Runs both RANSAC implementations (quality absent and present) on the
/// same degenerate input and requires identical outcomes — the fast path
/// must fail exactly like the naive scan, never panic, and terminate
/// within the iteration budget.
fn assert_ransac_failure_parity(
    src: &[Vec2],
    dst: &[Vec2],
    cfg: &RansacConfig,
    label: &str,
) -> Result<bba_features::RansacResult, RansacError> {
    let naive = {
        let mut rng = StdRng::seed_from_u64(99);
        ransac_rigid_naive(src, dst, cfg, &mut rng)
    };
    let quality: Vec<f64> = (0..src.len()).map(|i| i as f64).collect();
    for q in [None, Some(quality.as_slice())] {
        let mut rng = StdRng::seed_from_u64(99);
        let fast = ransac_rigid_guided(src, dst, q, cfg, &mut rng);
        assert_eq!(naive, fast, "{label}: fast path diverged (quality: {})", q.is_some());
    }
    naive
}

#[test]
fn ransac_under_three_correspondences_fails_identically() {
    let cfg = RansacConfig::default();
    let p = Vec2::new(3.0, 4.0);
    for pts in [vec![], vec![p], vec![p, Vec2::new(8.0, -2.0)]] {
        let r = assert_ransac_failure_parity(&pts, &pts, &cfg, "tiny input");
        match pts.len() {
            0 | 1 => assert!(
                matches!(r, Err(RansacError::TooFewCorrespondences { .. })),
                "{} point(s): got {r:?}",
                pts.len()
            ),
            // Two distinct identity-mapped points fit a model with two
            // inliers — still below the default min_inliers of six.
            _ => assert!(matches!(r, Err(RansacError::NoConsensus { best: 2, .. })), "got {r:?}"),
        }
    }
}

#[test]
fn ransac_all_collinear_points_behave_identically() {
    // Collinear but distinct points still pin a rigid transform (two
    // distinct points fix rotation + translation); the contract under test
    // is only that both implementations agree bit-for-bit on the outcome.
    let cfg = RansacConfig { min_inliers: 4, ..Default::default() };
    let src: Vec<Vec2> = (0..12).map(|i| Vec2::new(i as f64, 2.0 * i as f64)).collect();
    let dst: Vec<Vec2> = src.iter().map(|p| Vec2::new(-p.y + 1.0, p.x - 3.0)).collect();
    let r = assert_ransac_failure_parity(&src, &dst, &cfg, "collinear");
    let r = r.expect("distinct collinear correspondences are solvable");
    assert_eq!(r.num_inliers, 12);
}

#[test]
fn ransac_all_outliers_reports_no_consensus_identically() {
    // Index-incoherent scatter: no rigid model explains more than a couple
    // of correspondences, so the scan must exhaust its budget and fail.
    let cfg = RansacConfig { max_iterations: 500, ..Default::default() };
    let src: Vec<Vec2> = (0..20).map(|i| Vec2::new(i as f64, (i * i % 13) as f64)).collect();
    let dst: Vec<Vec2> =
        (0..20).map(|i| Vec2::new(200.0 - 17.0 * i as f64, ((i * i * i) % 101) as f64)).collect();
    let r = assert_ransac_failure_parity(&src, &dst, &cfg, "all outliers");
    assert!(matches!(r, Err(RansacError::NoConsensus { .. })), "got {r:?}");
}

#[test]
fn ransac_all_duplicate_points_fail_identically_without_spinning() {
    // Every sample pair is coincident, so every 2-point fit is degenerate:
    // no model is ever scored, and both paths must report zero consensus
    // after the full budget instead of looping or panicking.
    let cfg = RansacConfig::default();
    let p = Vec2::new(7.0, -1.0);
    let src = vec![p; 15];
    let dst = vec![Vec2::new(2.0, 2.0); 15];
    let r = assert_ransac_failure_parity(&src, &dst, &cfg, "all duplicates");
    assert!(matches!(r, Err(RansacError::NoConsensus { best: 0, .. })), "got {r:?}");
}

#[test]
fn mismatched_wire_payload_is_rejected_cleanly() {
    let mut ds = Dataset::new(DatasetConfig::test_small(), 6);
    let pair = ds.next_pair().unwrap();
    let aligner = engine();
    let other = aligner.frame_from_parts(
        pair.other.scan.points().iter().map(|p| p.position),
        pair.other.detections.iter().map(|d| (d.box3, d.confidence)),
    );
    let mut bytes = bb_align::encode_frame(&other);
    // Corrupt the cell count upward: decode must not panic or over-read.
    bytes[20] = 0xFF;
    bytes[21] = 0xFF;
    assert!(bb_align::decode_frame(&bytes).is_err());
}

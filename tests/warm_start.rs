//! Temporal warm-start contract tests.
//!
//! The warm path's load-bearing promise is *safety*: whatever the tracker
//! predicts, a warm miss must fall back to a recovery bit-identical to
//! the cold pipeline — same pose bits, same inlier sets, same RNG stream
//! — at any `bba-par` thread width, and a stale prediction must never be
//! returned as a verified recovery.

use bb_align::{BbAlign, BbAlignConfig, PerceptionFrame, PoseTracker, RecoveryPath, TrackerConfig};
use bba_bev::BevConfig;
use bba_dataset::{Dataset, DatasetConfig};
use bba_geometry::{Iso2, Vec2};
use bba_serve::{FrameSubmission, PairId, PoseService, ServiceConfig, SessionConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

/// The link-harness fast engine (128² BV raster): real pipeline, fast
/// enough for property-test repetition.
fn fast_engine() -> BbAlignConfig {
    let mut engine = BbAlignConfig {
        bev: BevConfig { range: 102.4, resolution: 1.6 },
        min_inliers_bv: 10,
        ..BbAlignConfig::default()
    };
    engine.descriptor.patch_size = 24;
    engine.descriptor.grid_size = 4;
    engine
}

fn frames_of(aligner: &BbAlign, agent: &bba_dataset::AgentFrame) -> PerceptionFrame {
    aligner.frame_from_parts(
        agent.scan.points().iter().map(|p| p.position),
        agent.detections.iter().map(|d| (d.box3, d.confidence)),
    )
}

/// One urban frame pair plus its engine, built once for every property
/// case (frame construction dominates; recovery is what we test).
fn shared_pair() -> &'static (BbAlign, PerceptionFrame, PerceptionFrame, Iso2) {
    static PAIR: OnceLock<(BbAlign, PerceptionFrame, PerceptionFrame, Iso2)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let aligner = BbAlign::new(fast_engine());
        let mut ds = Dataset::new(DatasetConfig::test_small(), 0);
        let pair = ds.next_pair().expect("dataset streams indefinitely");
        let ego = frames_of(&aligner, &pair.ego);
        let other = frames_of(&aligner, &pair.other);
        (aligner, ego, other, pair.true_relative)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A warm miss — here a hopeless prediction that can't pass the
    /// coarse screen — must produce the exact cold recovery: equal pose
    /// bits, equal inlier counts, and an identically-positioned RNG
    /// stream, at every thread width.
    #[test]
    fn warm_miss_fallback_is_bit_identical_across_widths(
        seed in 0u64..1_000,
        width in 1usize..9,
        yaw in -3.0f64..3.0,
    ) {
        let (aligner, ego, other, _) = shared_pair();
        let bad = Iso2::new(yaw, Vec2::new(200.0, 150.0));

        let mut rng_cold = StdRng::seed_from_u64(seed);
        let cold = bba_par::with_threads(1, || aligner.recover(ego, other, &mut rng_cold));

        let mut rng_warm = StdRng::seed_from_u64(seed);
        let warm = bba_par::with_threads(width, || {
            aligner.recover_warm(ego, other, Some(&bad), &mut rng_warm)
        });

        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                prop_assert_eq!(w.path, RecoveryPath::ColdFallback);
                prop_assert_eq!(
                    w.recovery.transform.yaw().to_bits(),
                    c.transform.yaw().to_bits()
                );
                prop_assert_eq!(
                    w.recovery.transform.translation().x.to_bits(),
                    c.transform.translation().x.to_bits()
                );
                prop_assert_eq!(
                    w.recovery.transform.translation().y.to_bits(),
                    c.transform.translation().y.to_bits()
                );
                prop_assert_eq!(&w.recovery, &c);
            }
            (Err(_), Err(_)) => {}
            (w, c) => prop_assert!(false, "paths diverged: warm {:?} vs cold {:?}", w, c),
        }
        // Both streams must sit at the same position afterwards.
        prop_assert_eq!(
            rng_warm.random_range(0..u64::MAX),
            rng_cold.random_range(0..u64::MAX)
        );
    }
}

/// A lane-change-style track break: the tracker's prediction points where
/// the vehicle *would* have been, far from where it is. The warm path
/// must reject the stale prediction (never report it as a recovery) and
/// fall back to the cold pipeline's answer.
#[test]
fn lane_change_prediction_is_rejected_not_returned() {
    let (aligner, ego, other, truth) = shared_pair();
    // A stale track: ~8 m lateral plus 10° of yaw off the true pose —
    // the maneuver the constant-velocity model cannot have seen coming.
    let stale =
        Iso2::new(truth.yaw() + 10f64.to_radians(), truth.translation() + Vec2::new(-3.0, 8.0));
    let mut rng = StdRng::seed_from_u64(9);
    let w = aligner.recover_warm(ego, other, Some(&stale), &mut rng).expect("pair recovers");
    assert_ne!(w.path, RecoveryPath::WarmStart, "stale prediction must not verify");
    let (dt, _) = w.recovery.transform.error_to(truth);
    let (stale_dt, _) = stale.error_to(truth);
    assert!(dt < stale_dt, "fallback ({dt:.2} m) must beat the stale prediction ({stale_dt:.2} m)");
    // And it is exactly the cold answer.
    let mut rng_cold = StdRng::seed_from_u64(9);
    let cold = aligner.recover(ego, other, &mut rng_cold).expect("pair recovers");
    assert_eq!(w.recovery, cold);
}

/// A link dropout ages the track out: after a long gap the confidence
/// gate must refuse to predict at all, while a one-frame gap stays warm.
#[test]
fn dropout_gap_ages_the_track_out() {
    let cfg = TrackerConfig::default();
    let mut tracker = PoseTracker::new(cfg);
    for k in 0..5 {
        let t = k as f64 * 0.1;
        tracker.update_pose(t, &Iso2::new(0.01 * t, Vec2::new(10.0 + t, 2.0)), 40);
    }
    assert!(
        tracker.warm_prediction(0.5).is_some(),
        "one 10 Hz frame after the last update must stay warm"
    );
    assert!(
        tracker.warm_prediction(0.4 + 60.0).is_none(),
        "a long dropout must age the track past the confidence gate"
    );
    // Boundary from the config itself: sigma grows by process_noise per
    // second, so the gate closes once it crosses max_prediction_sigma.
    let sigma_now = tracker.position_sigma().expect("track is initialised");
    let closes_after = (cfg.max_prediction_sigma - sigma_now) / cfg.process_noise;
    assert!(tracker.warm_prediction(0.4 + closes_after + 0.1).is_none());
    assert!(tracker.warm_prediction(0.4 + closes_after - 0.1).is_some());
}

/// The serving layer's warm path must preserve the batch determinism
/// contract: identical outcome streams (poses to the bit, paths, and
/// warm-hit pattern) at every thread width, with trackers enabled and
/// really firing.
#[test]
fn warm_batches_are_bit_identical_across_thread_widths() {
    const PAIRS: usize = 2;
    const ROUNDS: usize = 4;

    type Sequence = Vec<(f64, Arc<PerceptionFrame>, Arc<PerceptionFrame>)>;

    // Per-pair 10 Hz sequences, built once and shared across widths.
    let engine = Arc::new(BbAlign::new(fast_engine()));
    let sequences: Vec<Sequence> = (0..PAIRS)
        .map(|p| {
            let cfg = DatasetConfig::test_small().at_frame_interval(0.1);
            let mut ds = Dataset::new(cfg, 40 + p as u64);
            (0..ROUNDS)
                .map(|_| {
                    let fp = ds.next_pair().unwrap();
                    (
                        fp.time,
                        Arc::new(frames_of(&engine, &fp.ego)),
                        Arc::new(frames_of(&engine, &fp.other)),
                    )
                })
                .collect()
        })
        .collect();

    let run = |threads: usize| {
        let service = PoseService::new(
            Arc::clone(&engine),
            ServiceConfig {
                session: SessionConfig { queue_capacity: 2, staleness: 0.5 },
                seed: 11,
                ..Default::default()
            },
        );
        let mut log = Vec::new();
        bba_par::with_threads(threads, || {
            for round in 0..ROUNDS {
                let mut now = 0.0;
                for (p, seq) in sequences.iter().enumerate() {
                    let (time, ego, other) = &seq[round];
                    now = *time;
                    service.submit(
                        PairId::new(p as u32, 100),
                        FrameSubmission {
                            seq: round as u64,
                            timestamp: *time,
                            ego: Arc::clone(ego),
                            other: Arc::clone(other),
                        },
                        *time,
                    );
                }
                for o in service.process_batch(now) {
                    let pose = o.result.as_ref().ok().map(|r| {
                        let t = r.transform;
                        (
                            t.yaw().to_bits(),
                            t.translation().x.to_bits(),
                            t.translation().y.to_bits(),
                            r.inliers_bv(),
                            r.inliers_box(),
                        )
                    });
                    log.push((o.pair, o.seq, o.path, pose));
                }
            }
        });
        log
    };

    let baseline = run(1);
    assert_eq!(baseline.len(), PAIRS * ROUNDS, "every submission must be processed");
    let hits = baseline.iter().filter(|(_, _, path, _)| *path == RecoveryPath::WarmStart).count();
    assert!(hits >= 1, "the steady-state sequence should produce at least one warm hit");
    for width in [2usize, 4, 8] {
        assert_eq!(run(width), baseline, "warm batches diverged at {width} threads");
    }
}
